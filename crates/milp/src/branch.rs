//! Best-first branch & bound over the binary variables of a [`Model`].
//!
//! The search core is shared between the sequential driver in this module
//! and the work-stealing parallel driver in [`crate::parallel`]: nodes carry
//! the relaxation point computed when they were *created*, so each node costs
//! exactly one bounder call (the old driver re-solved the relaxation at every
//! pop, doubling the LP count). Bounders can short-circuit against a cutoff
//! (the incumbent), propose greedy completions for early incumbents, and
//! steer branching — see [`Bounder`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use flowc_budget::Budget;

use crate::lp::{LpResult, Simplex};
use crate::model::{Model, Sense, VarKind};
use crate::sol::{MilpError, Solution, SolveStatus, SolveTrace, TracePoint};
use crate::Result;

/// Supplies lower bounds (and optionally heuristic completions) for a node
/// of the branch & bound tree, identified by its partial fixing of the
/// binary variables.
///
/// The default implementation is [`LpBounder`]; domain code can substitute
/// combinatorial bounds where a dense LP is impractical (the VH-labeling
/// bounders in [`crate::metrics`] do exactly this).
pub trait Bounder {
    /// A valid lower bound on the objective over all completions of
    /// `fixed` (entries are `None` for free binaries; continuous variables
    /// are always free). Return `f64::INFINITY` when the node is infeasible.
    ///
    /// `cutoff` is the current incumbent objective (`f64::INFINITY` when no
    /// incumbent exists): any bound `>= cutoff` prunes the node, so a
    /// bounder may stop refining — e.g. skip an LP solve — as soon as a
    /// cheap bound already reaches it. Returning NaN is treated as
    /// `+inf` (prune) by the search, never trusted as a bound.
    fn lower_bound(&mut self, model: &Model, fixed: &[Option<bool>], cutoff: f64) -> f64;

    /// Rounds a valid lower bound **up** to the smallest objective value
    /// the model can actually achieve (its objective lattice). Must never
    /// return less than `bound` and must pass non-finite inputs through
    /// unchanged. The search applies this to every root and child bound,
    /// so a problem-aware bounder (e.g. an objective known to be a mix of
    /// two integers) prunes ties that a fractional relaxation bound alone
    /// cannot. Default: identity.
    fn tighten_bound(&self, bound: f64) -> f64 {
        bound
    }

    /// The fractional point backing the last [`Bounder::lower_bound`] call,
    /// if one exists — used to select branching variables and to round for
    /// incumbents. Length must equal `model.num_vars()`.
    fn relaxation_point(&self) -> Option<&[f64]> {
        None
    }

    /// A heuristic feasible completion of `fixed`, used to seed and improve
    /// incumbents without waiting for the search to reach a leaf. The
    /// returned point must have length `model.num_vars()`; the search
    /// validates feasibility before accepting it, so a best-effort guess is
    /// fine. Default: no suggestion.
    fn suggest_incumbent(&mut self, model: &Model, fixed: &[Option<bool>]) -> Option<Vec<f64>> {
        let _ = (model, fixed);
        None
    }

    /// A preferred branching variable among the free binaries of `fixed`,
    /// consulted before the generic most-fractional rule. Must return the
    /// index of a *free* binary (or `None` to defer). Default: defer.
    fn branch_hint(&self, model: &Model, fixed: &[Option<bool>]) -> Option<usize> {
        let _ = (model, fixed);
        None
    }
}

/// LP-relaxation bounding via the dense two-phase [`Simplex`].
#[derive(Debug, Default, Clone)]
pub struct LpBounder {
    simplex: Simplex,
    last_point: Option<Vec<f64>>,
}

impl LpBounder {
    /// Creates an LP bounder.
    pub fn new() -> Self {
        LpBounder::default()
    }
}

impl Bounder for LpBounder {
    fn lower_bound(&mut self, model: &Model, fixed: &[Option<bool>], _cutoff: f64) -> f64 {
        let fixed_pairs: Vec<(usize, f64)> = fixed
            .iter()
            .enumerate()
            .filter_map(|(i, f)| f.map(|b| (i, b as u8 as f64)))
            .collect();
        match self.simplex.solve(model, &fixed_pairs) {
            LpResult::Optimal { x, objective } => {
                // A numerically failed LP can surface NaN; treating it as a
                // bound would corrupt the best-first order, so prune instead.
                if objective.is_nan() || x.iter().any(|v| v.is_nan()) {
                    self.last_point = None;
                    return f64::INFINITY;
                }
                self.last_point = Some(x);
                objective
            }
            LpResult::Infeasible => {
                self.last_point = None;
                f64::INFINITY
            }
            LpResult::Unbounded => {
                self.last_point = None;
                f64::NEG_INFINITY
            }
        }
    }

    fn relaxation_point(&self) -> Option<&[f64]> {
        self.last_point.as_deref()
    }
}

/// Maps NaN bounds to `+inf` so they prune instead of corrupting the heap.
pub(crate) fn sanitize_bound(bound: f64) -> f64 {
    if bound.is_nan() {
        f64::INFINITY
    } else {
        bound
    }
}

/// An open node: its proven lower bound, the partial fixing, and the
/// relaxation point computed when the bound was (so expansion never has to
/// re-solve the relaxation).
pub(crate) struct Node {
    pub(crate) bound: f64,
    pub(crate) fixed: Vec<Option<bool>>,
    pub(crate) depth: usize,
    pub(crate) point: Option<Vec<f64>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first.
        // `total_cmp` gives a total order even if a NaN slips through
        // (NaN sorts above +inf, i.e. last), unlike the old
        // `partial_cmp().unwrap_or(Equal)` which silently broke heap
        // invariants on NaN bounds.
        other
            .bound
            .total_cmp(&self.bound)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

/// Result of expanding one node: children to enqueue plus any integer
/// incumbent candidates discovered along the way.
pub(crate) struct Expansion {
    pub(crate) children: Vec<Node>,
    pub(crate) incumbents: Vec<(Vec<f64>, f64)>,
}

/// Expands `node`: selects a branching variable, bounds both children, and
/// harvests incumbents (leaf completions, integral relaxation points).
/// `inc_obj` is the incumbent objective (`+inf` if none); `abort` is polled
/// between child bounds — returning `true` aborts mid-expansion and yields
/// `None` (the caller re-opens the node). Shared by the sequential and
/// parallel drivers.
pub(crate) fn expand_node(
    model: &Model,
    bounder: &mut dyn Bounder,
    node: &Node,
    inc_obj: f64,
    integrality_tol: f64,
    abort: &mut dyn FnMut() -> bool,
) -> Option<Expansion> {
    let mut out = Expansion {
        children: Vec::with_capacity(2),
        incumbents: Vec::new(),
    };
    let mut best = inc_obj;
    // If the node's relaxation point is already integral and feasible, it is
    // optimal for this subtree — record and close.
    if let Some(p) = node.point.as_deref() {
        if is_binary_integral(model, p, integrality_tol) && model.is_feasible(p, 1e-6) {
            let obj = model.objective_value(p);
            out.incumbents.push((p.to_vec(), obj));
            return Some(out);
        }
    }
    let branch_var = bounder
        .branch_hint(model, &node.fixed)
        .filter(|&i| node.fixed[i].is_none())
        .or_else(|| select_branch_var(model, &node.fixed, node.point.as_deref(), integrality_tol));
    let Some(branch_var) = branch_var else {
        // All binaries fixed: complete the continuous part and record.
        if let Some((values, obj)) = complete_leaf(model, bounder, &node.fixed) {
            out.incumbents.push((values, obj));
        }
        return Some(out);
    };
    for value in [true, false] {
        // Poll the abort check before each child bound: an expansion runs up
        // to two bounder calls, and waiting for the next pop to notice a
        // cancellation would stretch abort latency to a full expansion.
        if abort() {
            return None;
        }
        let mut child = node.fixed.clone();
        child[branch_var] = Some(value);
        let Some(child) = propagate(model, child) else {
            continue;
        };
        let child_bound = sanitize_bound(bounder.lower_bound(model, &child, best));
        let child_bound = bounder.tighten_bound(child_bound);
        if child_bound.is_infinite() {
            continue;
        }
        if child_bound >= best - 1e-9 {
            continue;
        }
        // Opportunistic incumbent from the child's relaxation.
        let point = bounder.relaxation_point().map(<[f64]>::to_vec);
        if let Some(p) = point.as_deref() {
            if is_binary_integral(model, p, integrality_tol) && model.is_feasible(p, 1e-6) {
                let obj = model.objective_value(p);
                if obj < best - 1e-12 {
                    best = obj;
                }
                out.incumbents.push((p.to_vec(), obj));
            }
        }
        out.children.push(Node {
            bound: child_bound,
            fixed: child,
            depth: node.depth + 1,
            point,
        });
    }
    Some(out)
}

/// Completes a fully-fixed node into a feasible point: first via the
/// bounder's own heuristic, else by solving the continuous remainder by LP.
pub(crate) fn complete_leaf(
    model: &Model,
    bounder: &mut dyn Bounder,
    fixed: &[Option<bool>],
) -> Option<(Vec<f64>, f64)> {
    if let Some(values) = bounder.suggest_incumbent(model, fixed) {
        if values.len() == model.num_vars() && model.is_feasible(&values, 1e-6) {
            let obj = model.objective_value(&values);
            if !obj.is_nan() {
                return Some((values, obj));
            }
        }
    }
    let fixed_pairs: Vec<(usize, f64)> = fixed
        .iter()
        .enumerate()
        .filter_map(|(i, f)| f.map(|b| (i, b as u8 as f64)))
        .collect();
    if let LpResult::Optimal { x, objective } = Simplex::new().solve(model, &fixed_pairs) {
        if !objective.is_nan() && model.is_feasible(&x, 1e-6) {
            return Some((x, objective));
        }
    }
    None
}

/// Asks the bounder for a heuristic completion of `fixed` and validates it.
pub(crate) fn heuristic_incumbent(
    model: &Model,
    bounder: &mut dyn Bounder,
    fixed: &[Option<bool>],
) -> Option<(Vec<f64>, f64)> {
    let values = bounder.suggest_incumbent(model, fixed)?;
    if values.len() != model.num_vars() || !model.is_feasible(&values, 1e-6) {
        return None;
    }
    let obj = model.objective_value(&values);
    if obj.is_nan() {
        return None;
    }
    Some((values, obj))
}

/// Validates a warm-start vector: length, binary integrality, feasibility.
/// Returns its objective when acceptable.
pub(crate) fn validate_warm_start(model: &Model, values: &[f64], tol: f64) -> Option<f64> {
    if values.len() != model.num_vars() {
        return None;
    }
    if !is_binary_integral(model, values, tol) || !model.is_feasible(values, 1e-6) {
        return None;
    }
    let obj = model.objective_value(values);
    if obj.is_nan() {
        return None;
    }
    Some(obj)
}

/// Best-first branch & bound MILP solver. Configure with the builder-style
/// setters, then call [`BranchBound::solve`] (LP bounding) or
/// [`BranchBound::solve_with`] (custom [`Bounder`]).
#[derive(Debug, Clone)]
pub struct BranchBound {
    pub(crate) time_limit: Duration,
    pub(crate) gap_tolerance: f64,
    pub(crate) integrality_tol: f64,
    pub(crate) trace_every: usize,
    pub(crate) budget: Option<Budget>,
    pub(crate) threads: usize,
    pub(crate) warm: Option<Vec<f64>>,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            time_limit: Duration::from_secs(3600),
            gap_tolerance: 1e-9,
            integrality_tol: 1e-6,
            trace_every: 50,
            budget: None,
            threads: 1,
            warm: None,
        }
    }
}

impl BranchBound {
    /// Creates a solver with a one-hour time limit and exact tolerances.
    pub fn new() -> Self {
        BranchBound::default()
    }

    /// Sets the wall-clock limit; on expiry the best incumbent is returned
    /// with [`SolveStatus::TimeLimit`] and the proven bound.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.time_limit = limit;
        self
    }

    /// Stops when the relative gap falls at or below `gap` (0 = optimal).
    pub fn gap_tolerance(mut self, gap: f64) -> Self {
        self.gap_tolerance = gap;
        self
    }

    /// Records a trace point every `n` explored nodes (in addition to every
    /// incumbent improvement).
    pub fn trace_every(mut self, n: usize) -> Self {
        self.trace_every = n.max(1);
        self
    }

    /// Attaches a shared [`Budget`]: the search loop checks cancellation,
    /// the budget deadline, and the solver-node ceiling at every node pop
    /// and between child bounds, on top of the solver's own `time_limit`.
    /// Exhaustion ends the solve exactly like a time-out — the best
    /// incumbent is returned with [`SolveStatus::TimeLimit`] and the proven
    /// bound (or [`MilpError::Infeasible`] when no incumbent exists yet).
    pub fn budget(mut self, budget: &Budget) -> Self {
        self.budget = Some(budget.clone());
        self
    }

    /// Number of worker threads for [`BranchBound::solve`] (default 1 =
    /// sequential). With more than one thread the search runs the
    /// work-stealing driver in [`crate::parallel`]: same optimum, possibly
    /// a different optimal point when ties exist.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Seeds the search with a known feasible point (e.g. the incumbent of
    /// an adjacent γ solve re-costed under this model's objective). The
    /// vector is validated — length, binary integrality, feasibility —
    /// before use; an invalid warm start is ignored, and
    /// [`Solution::warm_start`] reports whether it was accepted.
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.warm = Some(values);
        self
    }

    /// Solves `model` with LP-relaxation bounding, using the parallel
    /// driver when [`BranchBound::threads`] is above one.
    ///
    /// # Errors
    ///
    /// [`MilpError::Infeasible`] when no integer point exists,
    /// [`MilpError::Unbounded`] when the relaxation has no finite optimum.
    pub fn solve(&self, model: &Model) -> Result<Solution> {
        if self.threads > 1 {
            return crate::parallel::solve_parallel(self, model, LpBounder::new);
        }
        let mut bounder = LpBounder::new();
        self.solve_with(model, &mut bounder)
    }

    /// Solves `model` on multiple threads with per-worker bounders built by
    /// `make_bounder`. Equivalent to [`BranchBound::solve_with`] modulo
    /// tie-breaking: the objective is identical, the optimal point may be a
    /// different optimum.
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_parallel_with<B, F>(&self, model: &Model, make_bounder: F) -> Result<Solution>
    where
        B: Bounder,
        F: Fn() -> B + Sync,
    {
        crate::parallel::solve_parallel(self, model, make_bounder)
    }

    /// Solves `model` with a caller-supplied [`Bounder`].
    ///
    /// # Errors
    ///
    /// See [`BranchBound::solve`].
    pub fn solve_with(&self, model: &Model, bounder: &mut dyn Bounder) -> Result<Solution> {
        let start = Instant::now();
        let n = model.num_vars();
        let mut trace = SolveTrace::new();
        let mut incumbent: Option<(Vec<f64>, f64)> = None;
        let mut warm_used = self.warm.as_ref().map(|_| false);

        if let Some(warm) = &self.warm {
            if let Some(obj) = validate_warm_start(model, warm, self.integrality_tol) {
                incumbent = Some((warm.clone(), obj));
                warm_used = Some(true);
            }
        }

        let root_fixed: Vec<Option<bool>> = vec![None; n];
        let Some(root_fixed) = propagate(model, root_fixed) else {
            return Err(MilpError::Infeasible);
        };
        let inc_obj = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
        let root_bound = sanitize_bound(bounder.lower_bound(model, &root_fixed, inc_obj));
        let root_bound = bounder.tighten_bound(root_bound);
        if root_bound == f64::NEG_INFINITY {
            return Err(MilpError::Unbounded);
        }
        if root_bound.is_infinite() {
            // A warm-started solve proved the root relaxation cut off by the
            // incumbent: the incumbent is optimal.
            if let Some((values, objective)) = incumbent {
                return Ok(Solution {
                    values,
                    objective,
                    status: SolveStatus::Optimal,
                    best_bound: objective,
                    trace,
                    nodes: 0,
                    warm_start: warm_used,
                });
            }
            return Err(MilpError::Infeasible);
        }
        // Root heuristics: the bounder's greedy completion, then rounding.
        if let Some((values, obj)) = heuristic_incumbent(model, bounder, &root_fixed) {
            update_incumbent(
                &mut incumbent,
                values,
                obj,
                &mut trace,
                start,
                root_bound,
                0,
            );
        }
        if incumbent.is_none() {
            if let Some((values, obj)) = complete_leaf(model, bounder, &root_fixed) {
                update_incumbent(
                    &mut incumbent,
                    values,
                    obj,
                    &mut trace,
                    start,
                    root_bound,
                    0,
                );
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root_bound,
            fixed: root_fixed,
            depth: 0,
            point: bounder.relaxation_point().map(<[f64]>::to_vec),
        });
        let mut explored = 0u64;
        let mut global_bound = root_bound;

        while let Some(node) = heap.pop() {
            // Best-first: the popped node carries the smallest bound, which
            // *is* the global proven bound at this moment.
            global_bound = node.bound;
            // Budget first: a cancelled or exhausted budget must stop the
            // search immediately, even when the next pop would have closed
            // the gap.
            let out_of_budget = self.budget_exhausted(explored);
            if let Some((_, inc_obj)) = &incumbent {
                let denom = inc_obj.abs().max(1e-10);
                if !out_of_budget
                    && ((inc_obj - global_bound).abs() / denom <= self.gap_tolerance
                        || node.bound >= *inc_obj - 1e-9)
                {
                    global_bound = *inc_obj;
                    break;
                }
            }
            if start.elapsed() >= self.time_limit || out_of_budget {
                // Push the node back conceptually: its bound remains open.
                trace.push(TracePoint {
                    elapsed: start.elapsed(),
                    best_integer: incumbent.as_ref().map(|(_, o)| *o),
                    best_bound: global_bound,
                    open_nodes: heap.len() + 1,
                });
                return finish(
                    incumbent,
                    global_bound,
                    trace,
                    SolveStatus::TimeLimit,
                    explored,
                    warm_used,
                );
            }
            explored += 1;
            if (explored as usize).is_multiple_of(self.trace_every) {
                trace.push(TracePoint {
                    elapsed: start.elapsed(),
                    best_integer: incumbent.as_ref().map(|(_, o)| *o),
                    best_bound: global_bound,
                    open_nodes: heap.len() + 1,
                });
            }

            let inc_obj = incumbent.as_ref().map_or(f64::INFINITY, |(_, o)| *o);
            let mut abort = || self.budget_exhausted(explored);
            let Some(expansion) = expand_node(
                model,
                bounder,
                &node,
                inc_obj,
                self.integrality_tol,
                &mut abort,
            ) else {
                trace.push(TracePoint {
                    elapsed: start.elapsed(),
                    best_integer: incumbent.as_ref().map(|(_, o)| *o),
                    best_bound: global_bound,
                    open_nodes: heap.len() + 1,
                });
                return finish(
                    incumbent,
                    global_bound,
                    trace,
                    SolveStatus::TimeLimit,
                    explored,
                    warm_used,
                );
            };
            for (values, obj) in expansion.incumbents {
                update_incumbent(
                    &mut incumbent,
                    values,
                    obj,
                    &mut trace,
                    start,
                    global_bound,
                    heap.len(),
                );
            }
            for child in expansion.children {
                heap.push(child);
            }
        }

        if let Some((_, obj)) = &incumbent {
            global_bound = global_bound.max(f64::NEG_INFINITY).min(*obj);
            if heap.is_empty() {
                global_bound = *obj;
            }
        } else if heap.is_empty() {
            return Err(MilpError::Infeasible);
        }
        trace.push(TracePoint {
            elapsed: start.elapsed(),
            best_integer: incumbent.as_ref().map(|(_, o)| *o),
            best_bound: global_bound,
            open_nodes: heap.len(),
        });
        finish(
            incumbent,
            global_bound,
            trace,
            SolveStatus::Optimal,
            explored,
            warm_used,
        )
    }

    pub(crate) fn budget_exhausted(&self, explored: u64) -> bool {
        self.budget
            .as_ref()
            .is_some_and(|b| b.check_solver_nodes(explored).is_err())
    }
}

pub(crate) fn finish(
    incumbent: Option<(Vec<f64>, f64)>,
    best_bound: f64,
    trace: SolveTrace,
    status: SolveStatus,
    nodes: u64,
    warm_start: Option<bool>,
) -> Result<Solution> {
    match incumbent {
        Some((values, objective)) => Ok(Solution {
            values,
            objective,
            status,
            best_bound,
            trace,
            nodes,
            warm_start,
        }),
        None => Err(MilpError::Infeasible),
    }
}

fn update_incumbent(
    incumbent: &mut Option<(Vec<f64>, f64)>,
    values: Vec<f64>,
    objective: f64,
    trace: &mut SolveTrace,
    start: Instant,
    global_bound: f64,
    open_nodes: usize,
) {
    let improves = match incumbent {
        Some((_, cur)) => objective < *cur - 1e-12,
        None => true,
    };
    if improves {
        *incumbent = Some((values, objective));
        trace.push(TracePoint {
            elapsed: start.elapsed(),
            best_integer: Some(objective),
            best_bound: global_bound,
            open_nodes,
        });
    }
}

pub(crate) fn is_binary_integral(model: &Model, x: &[f64], tol: f64) -> bool {
    model.binaries().all(|v| {
        x[v.index()].fract().min(1.0 - x[v.index()].fract()).abs() <= tol
            || (x[v.index()] - x[v.index()].round()).abs() <= tol
    })
}

pub(crate) fn select_branch_var(
    model: &Model,
    fixed: &[Option<bool>],
    point: Option<&[f64]>,
    tol: f64,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for v in model.binaries() {
        let i = v.index();
        if fixed[i].is_some() {
            continue;
        }
        let frac = match point {
            Some(p) => {
                let f = p[i] - p[i].floor();
                f.min(1.0 - f)
            }
            None => 0.5,
        };
        if point.is_some() && frac <= tol {
            // Integral in the relaxation: deprioritize but keep as fallback.
            if best.is_none() {
                best = Some((i, -1.0));
            }
            continue;
        }
        match best {
            Some((_, bf)) if bf >= frac => {}
            _ => best = Some((i, frac)),
        }
    }
    best.map(|(i, _)| i)
}

/// Activity-based constraint propagation: repeatedly fixes binaries forced
/// by min/max-activity arguments. Returns `None` on detected infeasibility.
pub(crate) fn propagate(model: &Model, mut fixed: Vec<Option<bool>>) -> Option<Vec<Option<bool>>> {
    // Bounds per variable under the current fixing.
    let bounds = |fixed: &[Option<bool>], i: usize| -> (f64, f64) {
        match model.var_kind(crate::VarId(i as u32)) {
            VarKind::Binary => match fixed[i] {
                Some(true) => (1.0, 1.0),
                Some(false) => (0.0, 0.0),
                None => (0.0, 1.0),
            },
            VarKind::Continuous { lb, ub } => (lb, ub),
        }
    };
    loop {
        let mut changed = false;
        for c in &model.cons {
            // Min/max activity.
            let mut min_act = 0.0;
            let mut max_act = 0.0;
            for &(v, a) in &c.terms {
                let (lo, hi) = bounds(&fixed, v.index());
                if a >= 0.0 {
                    min_act += a * lo;
                    max_act += a * hi;
                } else {
                    min_act += a * hi;
                    max_act += a * lo;
                }
            }
            let tol = 1e-9;
            match c.sense {
                Sense::Le => {
                    if min_act > c.rhs + tol {
                        return None;
                    }
                }
                Sense::Ge => {
                    if max_act < c.rhs - tol {
                        return None;
                    }
                }
                Sense::Eq => {
                    if min_act > c.rhs + tol || max_act < c.rhs - tol {
                        return None;
                    }
                }
            }
            // Unit propagation on free binaries.
            for &(v, a) in &c.terms {
                let i = v.index();
                if !matches!(model.var_kind(v), VarKind::Binary) || fixed[i].is_some() {
                    continue;
                }
                if a.abs() < tol {
                    continue;
                }
                // Test both settings against the activity window.
                let feas = |val: f64, sense: Sense| -> bool {
                    // Activity excluding i, then add a*val.
                    let (lo_i, hi_i) = (0.0, 1.0);
                    let (min_wo, max_wo) = if a >= 0.0 {
                        (min_act - a * lo_i, max_act - a * hi_i)
                    } else {
                        (min_act - a * hi_i, max_act - a * lo_i)
                    };
                    let min_w = min_wo + a * val;
                    let max_w = max_wo + a * val;
                    match sense {
                        Sense::Le => min_w <= c.rhs + tol,
                        Sense::Ge => max_w >= c.rhs - tol,
                        Sense::Eq => min_w <= c.rhs + tol && max_w >= c.rhs - tol,
                    }
                };
                let can0 = feas(0.0, c.sense);
                let can1 = feas(1.0, c.sense);
                match (can0, can1) {
                    (false, false) => return None,
                    (true, false) => {
                        fixed[i] = Some(false);
                        changed = true;
                    }
                    (false, true) => {
                        fixed[i] = Some(true);
                        changed = true;
                    }
                    (true, true) => {}
                }
            }
        }
        if !changed {
            return Some(fixed);
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    #[test]
    fn knapsack_optimum() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2, 5a+4b+3c <= 10 => a,b (16).
        let mut m = Model::new();
        let a = m.add_binary("a", -10.0);
        let b = m.add_binary("b", -6.0);
        let c = m.add_binary("c", -4.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Le, 2.0);
        m.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Sense::Le, 10.0);
        let sol = BranchBound::new().solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert!((sol.objective + 16.0).abs() < 1e-6);
        assert!((sol.relative_gap()).abs() < 1e-6);
    }

    #[test]
    fn vertex_cover_on_odd_cycle() {
        // Min VC of C5 = 3; LP relaxation gives 2.5, so branching is forced.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let sol = BranchBound::new().solve(&m).unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn mixed_integer_with_continuous() {
        // min -y s.t. y <= 2a + 3b, a + b <= 1, y <= 2.5 -> b=1, y=2.5.
        let mut m = Model::new();
        let a = m.add_binary("a", 0.0);
        let b = m.add_binary("b", 0.0);
        let y = m.add_continuous("y", 0.0, 2.5, -1.0);
        m.add_constraint(&[(y, 1.0), (a, -2.0), (b, -3.0)], Sense::Le, 0.0);
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
        let sol = BranchBound::new().solve(&m).unwrap();
        assert!((sol.objective + 2.5).abs() < 1e-6, "got {}", sol.objective);
        assert_eq!(sol.values[b.index()].round() as i64, 1);
    }

    #[test]
    fn infeasible_model_errors() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        m.add_constraint(&[(a, 1.0)], Sense::Ge, 2.0);
        assert_eq!(
            BranchBound::new().solve(&m).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn equality_constraints_respected() {
        // exactly two of four chosen, min cost.
        let mut m = Model::new();
        let costs = [5.0, 1.0, 3.0, 2.0];
        let xs: Vec<_> = costs
            .iter()
            .enumerate()
            .map(|(i, &c)| m.add_binary(format!("x{i}"), c))
            .collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 1.0)).collect();
        m.add_constraint(&terms, Sense::Eq, 2.0);
        let sol = BranchBound::new().solve(&m).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert_eq!(sol.values[xs[1].index()].round() as i64, 1);
        assert_eq!(sol.values[xs[3].index()].round() as i64, 1);
    }

    #[test]
    fn time_limit_returns_incumbent_and_gap() {
        // A larger set-partitioning-flavoured instance; with a zero time
        // budget we still get the root heuristic incumbent and a gap.
        let mut m = Model::new();
        let n = 14;
        let xs: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n {
            m.add_constraint(
                &[(xs[i], 1.0), (xs[(i + 1) % n], 1.0), (xs[(i + 2) % n], 1.0)],
                Sense::Ge,
                1.0,
            );
        }
        let sol = BranchBound::new()
            .time_limit(Duration::from_millis(0))
            .solve(&m);
        if let Ok(sol) = sol {
            assert!(sol.relative_gap() <= 1.0);
            assert!(!sol.trace.points().is_empty());
        }
    }

    fn ring_cover_model(n: usize) -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..n)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i % 3) as f64))
            .collect();
        for i in 0..n {
            m.add_constraint(
                &[(xs[i], 1.0), (xs[(i + 1) % n], 1.0), (xs[(i + 2) % n], 1.0)],
                Sense::Ge,
                1.0,
            );
        }
        m
    }

    #[test]
    fn cancelled_budget_stops_the_search_with_incumbent() {
        let m = ring_cover_model(14);
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        match BranchBound::new().budget(&budget).solve(&m) {
            Ok(sol) => assert_eq!(sol.status, SolveStatus::TimeLimit),
            Err(e) => assert_eq!(e, MilpError::Infeasible),
        }
    }

    /// A market-split instance: a few dense equality knapsacks over many
    /// binaries. The LP bound is uselessly weak here, so branch & bound
    /// grinds through an enormous tree — exactly what a mid-flight cancel
    /// needs to land in.
    pub(crate) fn market_split_model(vars: usize, rows: usize) -> Model {
        let mut m = Model::new();
        let xs: Vec<_> = (0..vars)
            .map(|j| m.add_binary(format!("x{j}"), 1.0))
            .collect();
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..rows {
            let mut terms = Vec::with_capacity(vars);
            let mut total = 0i64;
            for &x in &xs {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let c = (state % 97 + 1) as i64;
                total += c;
                terms.push((x, c as f64));
            }
            m.add_constraint(&terms, Sense::Eq, (total / 2) as f64);
        }
        m
    }

    #[test]
    fn cancellation_mid_solve_returns_promptly() {
        // The search tree on this instance is nowhere near exhausted when
        // the cancel fires, so the solve must notice the token between LP
        // bound calls — not only at node pops — for the abort to land
        // within a couple of LP solves. The 2s ceiling is a wide CI-proof
        // margin over the observed latency; the 30s solver time limit is a
        // backstop so a cancellation regression fails the test instead of
        // hanging it.
        let m = market_split_model(40, 4);
        let budget = Budget::unlimited();
        let handle = budget.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            handle.cancel();
        });
        let start = Instant::now();
        let result = BranchBound::new()
            .time_limit(Duration::from_secs(30))
            .budget(&budget)
            .solve(&m);
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        match result {
            Ok(sol) => assert_eq!(sol.status, SolveStatus::TimeLimit),
            Err(e) => assert_eq!(e, MilpError::Infeasible),
        }
        assert!(
            elapsed < Duration::from_secs(2),
            "cancelled solve took {elapsed:?}"
        );
    }

    #[test]
    fn solver_node_ceiling_stops_early() {
        let m = ring_cover_model(14);
        // A zero ceiling trips before the first node is explored, so the
        // solve must stop with whatever the root heuristic produced.
        let budget = Budget::unlimited().with_max_solver_nodes(0);
        match BranchBound::new().budget(&budget).solve(&m) {
            Ok(sol) => assert_eq!(sol.status, SolveStatus::TimeLimit),
            Err(e) => assert_eq!(e, MilpError::Infeasible),
        }
        // A generous ceiling changes nothing.
        let budget = Budget::unlimited().with_max_solver_nodes(10_000_000);
        let sol = BranchBound::new().budget(&budget).solve(&m).unwrap();
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn propagation_fixes_forced_binaries() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        let b = m.add_binary("b", 1.0);
        // a + b >= 2 forces both to 1.
        m.add_constraint(&[(a, 1.0), (b, 1.0)], Sense::Ge, 2.0);
        let fixed = propagate(&m, vec![None, None]).unwrap();
        assert_eq!(fixed, vec![Some(true), Some(true)]);
        // a + b <= 0 forces both to 0.
        let mut m2 = Model::new();
        let a2 = m2.add_binary("a", 1.0);
        let b2 = m2.add_binary("b", 1.0);
        m2.add_constraint(&[(a2, 1.0), (b2, 1.0)], Sense::Le, 0.0);
        let fixed = propagate(&m2, vec![None, None]).unwrap();
        assert_eq!(fixed, vec![Some(false), Some(false)]);
    }

    #[test]
    fn propagation_detects_conflict() {
        let mut m = Model::new();
        let a = m.add_binary("a", 1.0);
        m.add_constraint(&[(a, 1.0)], Sense::Ge, 1.0);
        m.add_constraint(&[(a, 1.0)], Sense::Le, 0.0);
        assert!(propagate(&m, vec![None]).is_none());
    }

    #[test]
    fn custom_bounder_drives_the_search() {
        // A combinatorial bounder for min Σxᵢ s.t. pairwise covers — count
        // half the uncovered constraints as the bound, no LP involved.
        struct CoverBounder {
            pairs: Vec<(usize, usize)>,
        }
        impl Bounder for CoverBounder {
            fn lower_bound(&mut self, _model: &Model, fixed: &[Option<bool>], _cutoff: f64) -> f64 {
                // Each uncovered pair needs at least one endpoint; a vertex
                // can serve many pairs, so matching-style pairing is needed
                // for tightness — here the trivial chosen-count bound plus
                // a greedy disjoint-pair count suffices.
                if self
                    .pairs
                    .iter()
                    .any(|&(u, v)| fixed[u] == Some(false) && fixed[v] == Some(false))
                {
                    return f64::INFINITY; // constraint unsatisfiable
                }
                let chosen = fixed.iter().filter(|f| **f == Some(true)).count() as f64;
                let mut used = vec![false; fixed.len()];
                let mut extra = 0.0;
                for &(u, v) in &self.pairs {
                    let free = |i: usize| fixed[i].is_none() && !used[i];
                    if fixed[u] != Some(true) && fixed[v] != Some(true) && free(u) && free(v) {
                        used[u] = true;
                        used[v] = true;
                        extra += 1.0;
                    }
                }
                chosen + extra
            }
        }
        // C5 vertex cover again: optimum 3.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        let pairs: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        for &(u, v) in &pairs {
            m.add_constraint(&[(xs[u], 1.0), (xs[v], 1.0)], Sense::Ge, 1.0);
        }
        let mut bounder = CoverBounder { pairs };
        let sol = BranchBound::new().solve_with(&m, &mut bounder).unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(sol.status, SolveStatus::Optimal);
    }

    #[test]
    fn trace_records_convergence() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..8 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 8], 1.0)], Sense::Ge, 1.0);
        }
        let sol = BranchBound::new().trace_every(1).solve(&m).unwrap();
        assert!(!sol.trace.points().is_empty());
        assert!(sol.trace.final_gap() < 1e-6);
        // Gap is monotone non-increasing at the final point vs the first.
        let first = sol.trace.points().first().unwrap().relative_gap();
        assert!(sol.trace.final_gap() <= first + 1e-9);
    }

    /// Regression for the NaN heap-order bug: a bounder that reports NaN for
    /// some nodes must have those nodes pruned (NaN ⇒ `+inf`), not silently
    /// compared `Equal` — the solve still terminates with the true optimum
    /// reachable through non-NaN nodes, or proves infeasibility cleanly.
    #[test]
    fn nan_bounds_are_pruned_not_trusted() {
        struct NanBounder {
            inner: LpBounder,
            calls: usize,
        }
        impl Bounder for NanBounder {
            fn lower_bound(&mut self, model: &Model, fixed: &[Option<bool>], cutoff: f64) -> f64 {
                self.calls += 1;
                // Poison every third bound with NaN; the search must treat
                // it as prunable, so the optimum is still found through the
                // remaining nodes of this small complete search space.
                if self.calls.is_multiple_of(3) {
                    return f64::NAN;
                }
                self.inner.lower_bound(model, fixed, cutoff)
            }
            fn relaxation_point(&self) -> Option<&[f64]> {
                self.inner.relaxation_point()
            }
        }
        let mut m = Model::new();
        let xs: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..6 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 6], 1.0)], Sense::Ge, 1.0);
        }
        let mut bounder = NanBounder {
            inner: LpBounder::new(),
            calls: 0,
        };
        // NaN-pruning may cut the true optimum's subtree, but the solve must
        // terminate with a feasible answer and an internally consistent
        // bound — never corrupt the heap or loop forever.
        let sol = BranchBound::new().solve_with(&m, &mut bounder).unwrap();
        assert!(model_feasible(&m, &sol.values));
        assert!(!sol.objective.is_nan());
        assert!(!sol.best_bound.is_nan());
    }

    fn model_feasible(m: &Model, x: &[f64]) -> bool {
        m.is_feasible(x, 1e-6)
    }

    #[test]
    fn node_ordering_is_nan_safe() {
        // total_cmp puts a NaN bound *after* +inf in the pop order, so even
        // a NaN that slips through sanitize cannot shadow real nodes.
        let mk = |bound: f64| Node {
            bound,
            fixed: vec![],
            depth: 0,
            point: None,
        };
        let mut heap = BinaryHeap::new();
        heap.push(mk(f64::NAN));
        heap.push(mk(2.0));
        heap.push(mk(1.0));
        assert_eq!(heap.pop().unwrap().bound, 1.0);
        assert_eq!(heap.pop().unwrap().bound, 2.0);
        assert!(heap.pop().unwrap().bound.is_nan());
        assert_eq!(sanitize_bound(f64::NAN), f64::INFINITY);
        assert_eq!(sanitize_bound(3.5), 3.5);
    }

    #[test]
    fn warm_start_seeds_the_incumbent() {
        // C5 vertex cover: warm start with the known optimum {0, 2, 4}.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let warm = vec![1.0, 0.0, 1.0, 0.0, 1.0];
        let sol = BranchBound::new().warm_start(warm).solve(&m).unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(sol.status, SolveStatus::Optimal);
        assert_eq!(sol.warm_start, Some(true));

        // An infeasible warm start is rejected, not trusted.
        let bad = vec![0.0; 5];
        let sol = BranchBound::new().warm_start(bad).solve(&m).unwrap();
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(sol.warm_start, Some(false));

        // No warm start ⇒ `None`.
        let sol = BranchBound::new().solve(&m).unwrap();
        assert_eq!(sol.warm_start, None);
    }

    #[test]
    fn solution_reports_explored_nodes() {
        // C5 vertex cover: the LP root bound (2.5) cannot close against the
        // integer optimum (3), so at least one node must be expanded.
        let mut m = Model::new();
        let xs: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"), 1.0)).collect();
        for i in 0..5 {
            m.add_constraint(&[(xs[i], 1.0), (xs[(i + 1) % 5], 1.0)], Sense::Ge, 1.0);
        }
        let sol = BranchBound::new().solve(&m).unwrap();
        assert!(
            sol.nodes >= 1,
            "expected at least one explored node, got {}",
            sol.nodes
        );
    }
}

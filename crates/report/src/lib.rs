//! Shared JSON plumbing and atomic result artifacts.
//!
//! The workspace is registry-free, so this is a small hand-rolled JSON
//! value tree ([`Json`]), a strict parser ([`Json::parse`] — the service
//! protocol and the client mode round-trip through it), and an atomic
//! file writer ([`write_atomic`]: temp file in the destination directory,
//! then `rename`). An interrupted run — or a worker that dies mid-write —
//! can therefore never leave a truncated artifact under `results/`:
//! readers either see the previous complete file or the new complete file.
//!
//! This crate grew out of `flowc-bench`'s report module once the serve
//! layer needed the same machinery for request/response bodies and
//! metrics snapshots; `flowc_bench::report` re-exports it for
//! compatibility.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A JSON value. Numbers are `f64`; non-finite values serialize as
/// `null` (JSON has no NaN/Infinity).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via the shortest round-trip `f64` format).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer value.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a non-negative
    /// finite number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input, trailing
    /// garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as compact single-line JSON (for wire protocols
    /// and JSON-lines logs).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_compact(out);
                    out.push(':');
                    value.render_compact(out);
                }
                out.push('}');
            }
            other => other.render(out, 0),
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(key.clone()).render(out, depth + 1);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]`"));
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}`"));
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(fields))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// file in the same directory (so the final `rename` cannot cross a
/// filesystem boundary), are flushed to disk, and only then replace the
/// destination. Parent directories are created as needed.
///
/// # Errors
///
/// Propagates I/O errors; on failure the temporary file is removed and
/// any previous artifact at `path` is left untouched.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        {
            use std::io::Write as _;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(contents.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Renders `json` pretty-printed and writes it atomically to `path`.
///
/// # Errors
///
/// Propagates I/O errors from [`write_atomic`].
pub fn write_json(path: &Path, json: &Json) -> io::Result<()> {
    write_atomic(path, &json.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_and_typed_values() {
        let j = Json::Obj(vec![
            ("name".into(), Json::str("a\"b\\c\nd")),
            ("count".into(), Json::int(3)),
            ("ratio".into(), Json::Num(0.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let s = j.to_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("[\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("flowc-report-{}", std::process::id()));
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("flowc-report-json-{}", std::process::id()));
        let path = dir.join("r.json");
        let j = Json::Obj(vec![("x".into(), Json::int(1))]);
        write_json(&path, &j).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), j.to_pretty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let j = Json::Obj(vec![
            ("s".into(), Json::str("hé\t\"x\"\\")),
            ("n".into(), Json::Num(-12.75)),
            ("i".into(), Json::int(42)),
            ("b".into(), Json::Bool(false)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::int(1), Json::str(""), Json::Obj(vec![])]),
            ),
        ]);
        assert_eq!(Json::parse(&j.to_pretty()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_escapes_and_surrogates() {
        let j = Json::parse(r#""a\u0041\n\ud83d\ude00b""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "aA\n😀b");
        assert_eq!(
            Json::parse("1e3").unwrap().as_f64().unwrap(),
            1000.0 // exponent form
        );
        assert_eq!(Json::parse("-0.5").unwrap().as_f64().unwrap(), -0.5);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{'a':1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud800\"",
            "[1]]",
            "nul",
            "+1",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::parse(r#"{"job":"j-1","deadline_ms":250,"ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(j.get("job").and_then(Json::as_str), Some("j-1"));
        assert_eq!(j.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}

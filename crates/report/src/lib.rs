//! Shared JSON plumbing and atomic result artifacts.
//!
//! The workspace is registry-free, so this is a small hand-rolled JSON
//! value tree ([`Json`]), a strict parser ([`Json::parse`] — the service
//! protocol and the client mode round-trip through it), and an atomic
//! file writer ([`write_atomic`]: temp file in the destination directory,
//! then `rename`). An interrupted run — or a worker that dies mid-write —
//! can therefore never leave a truncated artifact under `results/`:
//! readers either see the previous complete file or the new complete file.
//!
//! This crate grew out of `flowc-bench`'s report module once the serve
//! layer needed the same machinery for request/response bodies and
//! metrics snapshots; `flowc_bench::report` re-exports it for
//! compatibility.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A JSON value. Numbers are `f64`; non-finite values serialize as
/// `null` (JSON has no NaN/Infinity).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (rendered via the shortest round-trip `f64` format).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an integer value.
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload truncated to `u64`, if this is a non-negative
    /// finite number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.is_finite() && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (one value, surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input, trailing
    /// garbage, or nesting deeper than 128 levels.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Renders the value as pretty-printed JSON (2-space indent) with a
    /// trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders the value as compact single-line JSON (for wire protocols
    /// and JSON-lines logs).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).render_compact(out);
                    out.push(':');
                    value.render_compact(out);
                }
                out.push('}');
            }
            other => other.render(out, 0),
        }
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    Json::Str(key.clone()).render(out, depth + 1);
                    out.push_str(": ");
                    value.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// A JSON parse failure: what went wrong and the byte offset it was
/// detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where the failure was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `]`"));
            }
        }
        self.depth -= 1;
        Ok(Json::Arr(items))
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        self.depth += 1;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:`"));
            }
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                break;
            }
            if !self.eat(b',') {
                return Err(self.err("expected `,` or `}`"));
            }
        }
        self.depth -= 1;
        Ok(Json::Obj(fields))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("unescaped control character")),
                _ => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).expect("valid utf8"));
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Which step of an atomic write failed. Every variant carries the
/// underlying I/O error so callers can log the root cause; the variant
/// itself tells them what the filesystem state is (see [`WriteError`]).
#[derive(Debug)]
pub enum WriteStep {
    /// Creating the destination's parent directory.
    CreateDir,
    /// The destination path has no file-name component.
    BadPath,
    /// Creating the temporary file next to the destination. The previous
    /// artifact (if any) is untouched.
    CreateTemp,
    /// Writing or flushing the temporary file's bytes.
    WriteTemp,
    /// `fsync` of the temporary file before the rename.
    SyncTemp,
    /// The `rename` that publishes the artifact.
    Rename,
    /// `fsync` of the parent directory after the rename. The new file is
    /// visible but its directory entry may not survive a power loss.
    SyncDir,
}

impl WriteStep {
    fn name(&self) -> &'static str {
        match self {
            WriteStep::CreateDir => "create-dir",
            WriteStep::BadPath => "bad-path",
            WriteStep::CreateTemp => "create-temp",
            WriteStep::WriteTemp => "write-temp",
            WriteStep::SyncTemp => "sync-temp",
            WriteStep::Rename => "rename",
            WriteStep::SyncDir => "sync-dir",
        }
    }
}

/// A typed atomic-write failure: which step failed, on which path, and
/// the underlying I/O error. In every case except [`WriteStep::SyncDir`]
/// the destination still holds the previous complete artifact (or does
/// not exist); a half-written file is never visible.
#[derive(Debug)]
pub struct WriteError {
    /// The step that failed.
    pub step: WriteStep,
    /// The destination path the write was for.
    pub path: std::path::PathBuf,
    /// The underlying I/O error.
    pub source: io::Error,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "atomic write of {} failed at {}: {}",
            self.path.display(),
            self.step.name(),
            self.source
        )
    }
}

impl std::error::Error for WriteError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<WriteError> for io::Error {
    fn from(e: WriteError) -> io::Error {
        io::Error::new(e.source.kind(), e.to_string())
    }
}

/// Writes `contents` to `path` atomically and durably: the bytes go to a
/// temporary file in the same directory (so the final `rename` cannot
/// cross a filesystem boundary), are fsynced, renamed over the
/// destination, and then the parent directory is fsynced so the new
/// directory entry itself survives a power-loss-style crash. Parent
/// directories are created as needed.
///
/// # Errors
///
/// A [`WriteError`] naming the failed step; on failure the temporary
/// file is removed and any previous artifact at `path` is left
/// untouched (readers never observe a partial file).
pub fn write_atomic_typed(path: &Path, contents: &str) -> Result<(), WriteError> {
    let fail = |step: WriteStep, source: io::Error| WriteError {
        step,
        path: path.to_path_buf(),
        source,
    };
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir).map_err(|e| fail(WriteStep::CreateDir, e))?;
    }
    let file_name = path.file_name().ok_or_else(|| {
        fail(
            WriteStep::BadPath,
            io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"),
        )
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result = (|| {
        {
            use std::io::Write as _;
            if flowc_failpoint::should_fail("report.write.temp") {
                return Err(fail(
                    WriteStep::CreateTemp,
                    io::Error::other("injected temp-create failure"),
                ));
            }
            let mut f = fs::File::create(&tmp).map_err(|e| fail(WriteStep::CreateTemp, e))?;
            f.write_all(contents.as_bytes())
                .map_err(|e| fail(WriteStep::WriteTemp, e))?;
            f.sync_all().map_err(|e| fail(WriteStep::SyncTemp, e))?;
        }
        // A crash here must leave only the previous artifact visible:
        // the temp file is fully synced but not yet published.
        flowc_failpoint::maybe_crash("report.write.before-rename");
        fs::rename(&tmp, path).map_err(|e| fail(WriteStep::Rename, e))?;
        if let Some(dir) = dir {
            // Durability of the rename itself: fsync the directory so the
            // entry is on disk, not just in the page cache.
            fs::File::open(dir)
                .and_then(|d| d.sync_all())
                .map_err(|e| fail(WriteStep::SyncDir, e))?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// [`write_atomic_typed`] with the error flattened to [`io::Error`]
/// (compatibility shim for callers that only propagate).
///
/// # Errors
///
/// Propagates I/O errors; on failure the temporary file is removed and
/// any previous artifact at `path` is left untouched.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    write_atomic_typed(path, contents).map_err(io::Error::from)
}

/// Renders `json` pretty-printed and writes it atomically + durably to
/// `path`, with the typed per-step error.
///
/// # Errors
///
/// A [`WriteError`] naming the failed step (see [`write_atomic_typed`]).
pub fn write_json_atomic(path: &Path, json: &Json) -> Result<(), WriteError> {
    write_atomic_typed(path, &json.to_pretty())
}

/// Renders `json` pretty-printed and writes it atomically to `path`.
///
/// # Errors
///
/// Propagates I/O errors from [`write_atomic`].
pub fn write_json(path: &Path, json: &Json) -> io::Result<()> {
    write_atomic(path, &json.to_pretty())
}

// ---------------------------------------------------------------------------
// Integrity-checked artifacts: CRC32-framed JSON with verified read-back.
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3, the zlib polynomial), table-driven. Used to frame
/// journal records and on-disk artifacts so corruption is *detected* at
/// read time instead of silently poisoning downstream stages.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Why a checksummed artifact could not be read back. Every variant is a
/// cache *miss* from the caller's point of view; the variants exist so
/// metrics can distinguish "not there" from "there but corrupt".
#[derive(Debug)]
pub enum ReadCheckError {
    /// The file does not exist.
    Missing,
    /// The file exists but could not be read.
    Io(io::Error),
    /// The file is not the expected `{"crc32", "data"}` envelope.
    Malformed(String),
    /// The payload's checksum does not match the recorded one: the file
    /// is torn or corrupted.
    ChecksumMismatch {
        /// CRC32 recorded in the envelope.
        expected: u32,
        /// CRC32 recomputed from the payload.
        actual: u32,
    },
}

impl ReadCheckError {
    /// Whether the artifact was present-but-corrupt (as opposed to
    /// absent) — the figure integrity metrics count.
    pub fn is_corrupt(&self) -> bool {
        !matches!(self, ReadCheckError::Missing)
    }
}

impl std::fmt::Display for ReadCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadCheckError::Missing => write!(f, "artifact missing"),
            ReadCheckError::Io(e) => write!(f, "artifact unreadable: {e}"),
            ReadCheckError::Malformed(m) => write!(f, "artifact malformed: {m}"),
            ReadCheckError::ChecksumMismatch { expected, actual } => write!(
                f,
                "artifact corrupt: crc32 {actual:08x}, envelope says {expected:08x}"
            ),
        }
    }
}

impl std::error::Error for ReadCheckError {}

/// Writes `payload` to `path` inside a CRC32 envelope
/// (`{"crc32": "<hex>", "data": <payload>}`), atomically and durably.
/// Read it back with [`read_json_checked`], which verifies the checksum
/// and turns any corruption into a typed miss.
///
/// # Errors
///
/// A [`WriteError`] naming the failed step (see [`write_atomic_typed`]).
pub fn write_json_checked(path: &Path, payload: &Json) -> Result<(), WriteError> {
    let body = payload.to_compact();
    let envelope = Json::Obj(vec![
        (
            "crc32".into(),
            Json::str(format!("{:08x}", crc32(body.as_bytes()))),
        ),
        ("data".into(), payload.clone()),
    ]);
    write_atomic_typed(path, &envelope.to_pretty())
}

/// Reads a CRC32-enveloped artifact written by [`write_json_checked`],
/// verifying the checksum of the payload's canonical (compact) rendering.
///
/// # Errors
///
/// [`ReadCheckError`]: missing file, I/O failure, a malformed envelope,
/// or a checksum mismatch. Callers treat all of these as a cache miss;
/// [`ReadCheckError::is_corrupt`] separates absence from corruption for
/// metrics.
pub fn read_json_checked(path: &Path) -> Result<Json, ReadCheckError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(ReadCheckError::Missing),
        Err(e) => return Err(ReadCheckError::Io(e)),
    };
    let envelope = Json::parse(&text).map_err(|e| ReadCheckError::Malformed(e.to_string()))?;
    let expected = envelope
        .get("crc32")
        .and_then(Json::as_str)
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| ReadCheckError::Malformed("missing crc32 field".into()))?;
    let data = envelope
        .get("data")
        .ok_or_else(|| ReadCheckError::Malformed("missing data field".into()))?;
    let actual = crc32(data.to_compact().as_bytes());
    if actual != expected {
        return Err(ReadCheckError::ChecksumMismatch { expected, actual });
    }
    Ok(data.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_escaped_and_typed_values() {
        let j = Json::Obj(vec![
            ("name".into(), Json::str("a\"b\\c\nd")),
            ("count".into(), Json::int(3)),
            ("ratio".into(), Json::Num(0.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Obj(vec![])),
        ]);
        let s = j.to_pretty();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"count\": 3"));
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("[\n"));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.ends_with('\n'));
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("flowc-report-{}", std::process::id()));
        let path = dir.join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("out.json")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_json_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("flowc-report-json-{}", std::process::id()));
        let path = dir.join("r.json");
        let j = Json::Obj(vec![("x".into(), Json::int(1))]);
        write_json(&path, &j).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), j.to_pretty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let j = Json::Obj(vec![
            ("s".into(), Json::str("hé\t\"x\"\\")),
            ("n".into(), Json::Num(-12.75)),
            ("i".into(), Json::int(42)),
            ("b".into(), Json::Bool(false)),
            ("z".into(), Json::Null),
            (
                "a".into(),
                Json::Arr(vec![Json::int(1), Json::str(""), Json::Obj(vec![])]),
            ),
        ]);
        assert_eq!(Json::parse(&j.to_pretty()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_compact()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_escapes_and_surrogates() {
        let j = Json::parse(r#""a\u0041\n\ud83d\ude00b""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "aA\n😀b");
        assert_eq!(
            Json::parse("1e3").unwrap().as_f64().unwrap(),
            1000.0 // exponent form
        );
        assert_eq!(Json::parse("-0.5").unwrap().as_f64().unwrap(), -0.5);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{'a':1}",
            "tru",
            "1 2",
            "\"\\q\"",
            "\"\\ud800\"",
            "[1]]",
            "nul",
            "+1",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::parse(r#"{"job":"j-1","deadline_ms":250,"ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(j.get("job").and_then(Json::as_str), Some("j-1"));
        assert_eq!(j.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(j.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 test vectors (same polynomial as zlib's crc32).
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn checked_artifacts_round_trip_and_detect_corruption() {
        let dir = std::env::temp_dir().join(format!("flowc-report-test-{}", std::process::id()));
        let path = dir.join("artifact.json");
        let payload = Json::parse(r#"{"job":"j-1","xs":[1,2,3]}"#).unwrap();
        write_json_checked(&path, &payload).unwrap();
        assert_eq!(read_json_checked(&path).unwrap(), payload);

        // Absence is Missing, not corruption.
        let err = read_json_checked(&dir.join("nope.json")).unwrap_err();
        assert!(matches!(err, ReadCheckError::Missing));
        assert!(!err.is_corrupt());

        // Flip a payload byte: the checksum catches it.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("j-1", "j-9")).unwrap();
        let err = read_json_checked(&path).unwrap_err();
        assert!(
            matches!(err, ReadCheckError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(err.is_corrupt());

        // Truncate mid-document: malformed, still a corrupt miss.
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            read_json_checked(&path).unwrap_err(),
            ReadCheckError::Malformed(_)
        ));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_typed_reports_the_failed_step() {
        // A destination with no file-name component fails typed, early.
        let err = write_atomic_typed(Path::new("/"), "x").unwrap_err();
        assert!(matches!(err.step, WriteStep::BadPath));
        assert!(err.to_string().contains("bad-path"));

        // Creating the temp file inside a non-directory fails as CreateTemp
        // (the create_dir_all of a file path fails first on most systems,
        // so park the obstruction one level down).
        let dir = std::env::temp_dir().join(format!("flowc-report-wt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("occupied"), "not a dir").unwrap();
        let err = write_atomic_typed(&dir.join("occupied").join("x.json"), "x").unwrap_err();
        assert!(
            matches!(err.step, WriteStep::CreateDir | WriteStep::CreateTemp),
            "{err}"
        );
        let io: io::Error = err.into();
        assert!(io.to_string().contains("atomic write"));
        let _ = fs::remove_dir_all(&dir);
    }
}

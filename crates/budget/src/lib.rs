//! Shared resource budget and cooperative cancellation for the synthesis
//! pipeline.
//!
//! A [`Budget`] bundles the three resources a synthesis run may exhaust —
//! wall-clock (a deadline), BDD arena growth (a node ceiling), and
//! branch & bound exploration (a solver-node ceiling) — together with an
//! externally triggerable cancellation token. Long-running stages check it
//! *cooperatively*: the deep loops of the MILP branch & bound, the
//! vertex-cover search, BDD construction, and crossbar verification each
//! call [`Budget::check`] (or a cheaper specialized probe) at their
//! iteration boundaries and unwind with a typed [`BudgetExceeded`] instead
//! of running away.
//!
//! `Budget` is cheap to clone — clones share the cancellation flag, so
//! cancelling through a [`CancelHandle`] stops every stage holding a clone.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a budgeted computation had to stop early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation token was triggered from outside.
    Cancelled,
    /// The BDD manager would have grown past `limit` nodes.
    BddNodes {
        /// The configured ceiling that was hit.
        limit: usize,
    },
    /// The branch & bound explored `limit` nodes without finishing.
    SolverNodes {
        /// The configured ceiling that was hit.
        limit: u64,
    },
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "deadline exceeded"),
            BudgetExceeded::Cancelled => write!(f, "cancelled"),
            BudgetExceeded::BddNodes { limit } => {
                write!(f, "BDD node ceiling ({limit}) exceeded")
            }
            BudgetExceeded::SolverNodes { limit } => {
                write!(f, "solver node ceiling ({limit}) exceeded")
            }
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// A handle that cancels every stage sharing the originating [`Budget`].
///
/// Obtained from [`Budget::cancel_handle`]; safe to move to another thread
/// (e.g. a ctrl-c handler or an RPC server's disconnect callback).
#[derive(Debug, Clone)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A resource budget for one synthesis request.
///
/// The default budget is unlimited; restrict it with the builder methods:
///
/// ```
/// use std::time::Duration;
/// use flowc_budget::Budget;
///
/// let budget = Budget::unlimited()
///     .with_deadline(Duration::from_secs(30))
///     .with_max_bdd_nodes(1_000_000)
///     .with_max_solver_nodes(5_000_000);
/// assert!(budget.check().is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    deadline: Option<Instant>,
    max_bdd_nodes: Option<usize>,
    max_solver_nodes: Option<u64>,
    cancel: Arc<AtomicBool>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

impl Budget {
    /// A budget with no limits and a fresh (untriggered) cancellation flag.
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            max_bdd_nodes: None,
            max_solver_nodes: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn with_deadline(self, timeout: Duration) -> Self {
        self.with_deadline_at(Instant::now() + timeout)
    }

    /// Sets an absolute deadline.
    #[must_use]
    pub fn with_deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Caps the BDD manager arena at `limit` nodes.
    #[must_use]
    pub fn with_max_bdd_nodes(mut self, limit: usize) -> Self {
        self.max_bdd_nodes = Some(limit);
        self
    }

    /// Caps branch & bound exploration at `limit` nodes.
    #[must_use]
    pub fn with_max_solver_nodes(mut self, limit: u64) -> Self {
        self.max_solver_nodes = Some(limit);
        self
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The BDD node ceiling, if one is set.
    pub fn max_bdd_nodes(&self) -> Option<usize> {
        self.max_bdd_nodes
    }

    /// The solver node ceiling, if one is set.
    pub fn max_solver_nodes(&self) -> Option<u64> {
        self.max_solver_nodes
    }

    /// A handle that cancels this budget (and all clones of it).
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle(Arc::clone(&self.cancel))
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Time remaining until the deadline: `None` when no deadline is set,
    /// `Some(ZERO)` once it has passed.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Time remaining, clamped to `cap` (for stages that take their own
    /// `time_limit`): the smaller of `cap` and the time left on the clock.
    pub fn remaining_or(&self, cap: Duration) -> Duration {
        self.remaining().map_or(cap, |r| r.min(cap))
    }

    /// Whether the deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cooperative checkpoint: cancellation first (cheapest and most
    /// urgent), then the deadline. Node ceilings are checked by the stages
    /// that own the respective counters ([`Budget::check_solver_nodes`],
    /// the BDD manager's own arena accounting).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            return Err(BudgetExceeded::Cancelled);
        }
        if self.deadline_exceeded() {
            return Err(BudgetExceeded::Deadline);
        }
        Ok(())
    }

    /// [`Budget::check`] plus the solver-node ceiling against an explored
    /// count owned by the caller.
    pub fn check_solver_nodes(&self, explored: u64) -> Result<(), BudgetExceeded> {
        self.check()?;
        match self.max_solver_nodes {
            Some(limit) if explored >= limit => Err(BudgetExceeded::SolverNodes { limit }),
            _ => Ok(()),
        }
    }

    /// Derives a sub-budget whose deadline is the sooner of this budget's
    /// deadline and `timeout` from now; shares the cancellation flag and
    /// node ceilings.
    #[must_use]
    pub fn capped(&self, timeout: Duration) -> Self {
        let cap = Instant::now() + timeout;
        let mut sub = self.clone();
        sub.deadline = Some(self.deadline.map_or(cap, |d| d.min(cap)));
        sub
    }

    /// Starts a [`Stopwatch`] against this budget. Equivalent to
    /// [`Stopwatch::start`].
    pub fn stopwatch(&self) -> Stopwatch {
        Stopwatch::start(self)
    }
}

/// A budget-backed wall-clock timer: the single source of truth for both
/// *how long a stage has run* and *whether its deadline has passed*, so the
/// two can never drift apart (the pre-session pipeline measured elapsed
/// time with ad-hoc `Instant::now()` pairs while deadline checks went
/// through the [`Budget`], and the two could disagree around the cutoff).
///
/// A stopwatch shares the originating budget's cancellation flag and
/// deadline; [`Stopwatch::check`] is exactly [`Budget::check`], and
/// [`Stopwatch::lap`] reads elapsed time from the same clock.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
    budget: Budget,
}

impl Stopwatch {
    /// Starts timing now, bound to `budget`'s deadline and cancellation.
    pub fn start(budget: &Budget) -> Self {
        Stopwatch {
            start: Instant::now(),
            budget: budget.clone(),
        }
    }

    /// Starts timing now with no deadline (pure elapsed-time measurement).
    pub fn unbudgeted() -> Self {
        Stopwatch::start(&Budget::unlimited())
    }

    /// Wall-clock time since the stopwatch started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time since the last call to `lap` (or since start), and
    /// resets the lap origin — for timing consecutive stages off one clock.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now.saturating_duration_since(self.start);
        self.start = now;
        lap
    }

    /// The cooperative budget checkpoint ([`Budget::check`]).
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        self.budget.check()
    }

    /// The budget this stopwatch is bound to.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Time left on the budget's deadline clamped to `cap`
    /// ([`Budget::remaining_or`]).
    pub fn remaining_or(&self, cap: Duration) -> Duration {
        self.budget.remaining_or(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = Budget::unlimited();
        assert!(b.check().is_ok());
        assert!(b.check_solver_nodes(u64::MAX).is_ok());
        assert!(b.remaining().is_none());
        assert!(!b.deadline_exceeded());
    }

    #[test]
    fn expired_deadline_fails_check() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        assert_eq!(b.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        assert!(b.deadline_exceeded());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let clone = b.clone();
        assert!(clone.check().is_ok());
        b.cancel_handle().cancel();
        assert_eq!(clone.check(), Err(BudgetExceeded::Cancelled));
        assert!(b.cancel_handle().is_cancelled());
    }

    #[test]
    fn cancellation_outranks_deadline() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        b.cancel_handle().cancel();
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn solver_node_ceiling() {
        let b = Budget::unlimited().with_max_solver_nodes(100);
        assert!(b.check_solver_nodes(99).is_ok());
        assert_eq!(
            b.check_solver_nodes(100),
            Err(BudgetExceeded::SolverNodes { limit: 100 })
        );
    }

    #[test]
    fn capped_takes_the_sooner_deadline() {
        let b = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        let sub = b.capped(Duration::ZERO);
        assert!(sub.deadline_exceeded());
        assert!(!b.deadline_exceeded());
        // Sharing the cancel flag both ways.
        sub.cancel_handle().cancel();
        assert!(b.is_cancelled());

        let far = Budget::unlimited()
            .with_deadline(Duration::ZERO)
            .capped(Duration::from_secs(3600));
        assert!(far.deadline_exceeded());
    }

    #[test]
    fn remaining_or_clamps() {
        let b = Budget::unlimited();
        assert_eq!(
            b.remaining_or(Duration::from_secs(5)),
            Duration::from_secs(5)
        );
        let b = b.with_deadline(Duration::ZERO);
        assert_eq!(b.remaining_or(Duration::from_secs(5)), Duration::ZERO);
    }

    #[test]
    fn stopwatch_shares_the_budget_clock() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        let sw = b.stopwatch();
        assert_eq!(sw.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(sw.remaining_or(Duration::from_secs(5)), Duration::ZERO);

        let b = Budget::unlimited();
        let sw = Stopwatch::start(&b);
        assert!(sw.check().is_ok());
        b.cancel_handle().cancel();
        assert_eq!(sw.check(), Err(BudgetExceeded::Cancelled));
        // Elapsed keeps counting regardless of budget state.
        assert!(sw.elapsed() < Duration::from_secs(60));
    }

    #[test]
    fn stopwatch_laps_partition_elapsed_time() {
        let mut sw = Stopwatch::unbudgeted();
        let a = sw.lap();
        let b = sw.lap();
        // Laps are non-negative and restart the origin; both tiny here.
        assert!(a + b < Duration::from_secs(60));
        assert!(sw.elapsed() <= a + b + Duration::from_secs(60));
    }

    #[test]
    fn errors_display() {
        assert!(BudgetExceeded::Deadline.to_string().contains("deadline"));
        assert!(BudgetExceeded::Cancelled.to_string().contains("cancel"));
        assert!(BudgetExceeded::BddNodes { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(BudgetExceeded::SolverNodes { limit: 9 }
            .to_string()
            .contains('9'));
    }
}

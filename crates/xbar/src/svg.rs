//! SVG rendering of crossbar designs: wordlines and bitlines as a grid,
//! junctions colored by assignment (always-on bridges, positive and negated
//! literals), ports annotated. The output matches the matrix drawings of
//! the paper's figures and scales to medium designs.

use std::fmt::Write as _;

use crate::{Crossbar, DeviceAssignment};

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct SvgOptions {
    /// Pixel pitch between adjacent wires.
    pub pitch: f64,
    /// Junction dot radius.
    pub radius: f64,
    /// Whether to draw row/column labels (readable only on small designs).
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            pitch: 22.0,
            radius: 7.0,
            labels: true,
        }
    }
}

/// Renders the crossbar as an SVG document string.
pub fn to_svg(xbar: &Crossbar, options: &SvgOptions) -> String {
    let p = options.pitch;
    let margin = 3.0 * p;
    let width = margin * 2.0 + (xbar.cols().max(1) - 1) as f64 * p;
    let height = margin * 2.0 + (xbar.rows().max(1) - 1) as f64 * p;
    let x_of = |c: usize| margin + c as f64 * p;
    let y_of = |r: usize| margin + r as f64 * p;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"##
    );
    let _ = writeln!(svg, r##"<rect width="100%" height="100%" fill="white"/>"##);
    // Wires.
    for r in 0..xbar.rows() {
        let y = y_of(r);
        let is_input = xbar.input_row() == Some(r);
        let is_output = xbar.outputs().iter().any(|port| port.row == r);
        let (stroke, sw) = if is_input {
            ("#d62728", 2.5)
        } else if is_output {
            ("#2ca02c", 2.5)
        } else {
            ("#999999", 1.0)
        };
        let _ = writeln!(
            svg,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{stroke}" stroke-width="{sw}"/>"##,
            x_of(0) - p,
            x_of(xbar.cols().saturating_sub(1)) + p,
        );
    }
    for c in 0..xbar.cols() {
        let x = x_of(c);
        let _ = writeln!(
            svg,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#bbbbbb" stroke-width="1.0"/>"##,
            y_of(0) - p,
            y_of(xbar.rows().saturating_sub(1)) + p,
        );
    }
    // Junctions.
    for (r, c, a) in xbar.programmed_devices() {
        let (fill, title) = match a {
            DeviceAssignment::On => ("#000000".to_string(), "1 (bridge)".to_string()),
            DeviceAssignment::Literal { input, negated } => {
                let color = if negated { "#1f77b4" } else { "#ff7f0e" };
                (
                    color.to_string(),
                    format!("{}x{input}", if negated { "!" } else { "" }),
                )
            }
            DeviceAssignment::Off => continue,
        };
        let _ = writeln!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="{:.1}" fill="{fill}"><title>{title}</title></circle>"##,
            x_of(c),
            y_of(r),
            options.radius,
        );
    }
    // Port annotations and labels.
    if options.labels {
        if let Some(input_row) = xbar.input_row() {
            let _ = writeln!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" font-size="{:.0}" fill="#d62728">Vin</text>"##,
                4.0,
                y_of(input_row) + 4.0,
                0.6 * p,
            );
        }
        for port in xbar.outputs() {
            let _ = writeln!(
                svg,
                r##"<text x="{:.1}" y="{:.1}" font-size="{:.0}" fill="#2ca02c">{}</text>"##,
                x_of(xbar.cols().saturating_sub(1)) + 1.2 * p,
                y_of(port.row) + 4.0,
                0.6 * p,
                port.name,
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_structure() {
        let mut x = Crossbar::new(3, 2, 2);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 1,
                negated: true,
            },
        )
        .unwrap();
        x.set(2, 0, DeviceAssignment::On).unwrap();
        x.set_input_row(2).unwrap();
        x.add_output("f", 0).unwrap();
        let svg = to_svg(&x, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 3 + 2 wires, 3 junctions, Vin + one output label.
        assert_eq!(svg.matches("<line").count(), 5);
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains(">Vin<"));
        assert!(svg.contains(">f<"));
        // Literal polarity colors differ.
        assert!(svg.contains("#ff7f0e") && svg.contains("#1f77b4"));
    }

    #[test]
    fn labels_can_be_disabled() {
        let mut x = Crossbar::new(2, 1, 1);
        x.set_input_row(1).unwrap();
        x.add_output("f", 0).unwrap();
        let svg = to_svg(
            &x,
            &SvgOptions {
                labels: false,
                ..Default::default()
            },
        );
        assert!(!svg.contains("<text"));
    }
}

use std::fmt;

/// What a memristor junction is programmed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DeviceAssignment {
    /// Unused junction: always high resistance.
    #[default]
    Off,
    /// Stuck-on junction (logic `1`): always low resistance. COMPACT uses
    /// these to bridge the wordline and bitline of a `VH`-labelled node.
    On,
    /// A literal of Boolean input `input`: low resistance when the literal
    /// evaluates true.
    Literal {
        /// Index of the Boolean input variable.
        input: usize,
        /// Whether the literal is the negation of the input.
        negated: bool,
    },
}

impl DeviceAssignment {
    /// The conductance state of the device under an input assignment.
    ///
    /// An out-of-range literal index is a programming bug; it trips a
    /// `debug_assert` in debug builds and reads as non-conducting in
    /// release builds. Evaluation paths use [`Self::conducts_checked`],
    /// which surfaces the bug as a typed error instead.
    pub fn conducts(self, inputs: &[bool]) -> bool {
        match self {
            DeviceAssignment::Off => false,
            DeviceAssignment::On => true,
            DeviceAssignment::Literal { input, negated } => {
                debug_assert!(
                    input < inputs.len(),
                    "literal input {input} out of range ({} inputs)",
                    inputs.len()
                );
                inputs.get(input).is_some_and(|&b| b ^ negated)
            }
        }
    }

    /// Checked variant of [`Self::conducts`].
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::BadLiteral`] when a literal's input index is
    /// out of range for the supplied assignment.
    pub fn conducts_checked(self, inputs: &[bool]) -> crate::Result<bool> {
        match self {
            DeviceAssignment::Off => Ok(false),
            DeviceAssignment::On => Ok(true),
            DeviceAssignment::Literal { input, negated } => inputs
                .get(input)
                .map(|&b| b ^ negated)
                .ok_or(XbarError::BadLiteral {
                    input,
                    num_inputs: inputs.len(),
                }),
        }
    }

    /// Whether the device is assigned a literal (counted as "active" by the
    /// paper's power model).
    pub fn is_literal(self) -> bool {
        matches!(self, DeviceAssignment::Literal { .. })
    }
}

impl fmt::Display for DeviceAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceAssignment::Off => write!(f, "0"),
            DeviceAssignment::On => write!(f, "1"),
            DeviceAssignment::Literal { input, negated } => {
                write!(f, "{}x{}", if *negated { "!" } else { "" }, input)
            }
        }
    }
}

/// A named output port bound to a wordline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Output name (the circuit's output net name).
    pub name: String,
    /// Wordline (row) index the output is sensed on.
    pub row: usize,
}

/// Errors from crossbar construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum XbarError {
    /// A row index was out of range.
    RowOutOfRange {
        /// Offending index.
        row: usize,
        /// Number of rows.
        rows: usize,
    },
    /// A column index was out of range.
    ColOutOfRange {
        /// Offending index.
        col: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Evaluation was given the wrong number of input values.
    InputLen {
        /// Values supplied.
        got: usize,
        /// Inputs expected.
        expected: usize,
    },
    /// The crossbar has no input port assigned.
    NoInputPort,
    /// A programmed literal references an input index the crossbar does not
    /// have — a programming bug, surfaced as a typed error by the checked
    /// evaluation paths.
    BadLiteral {
        /// The literal's (out-of-range) input index.
        input: usize,
        /// Number of inputs the evaluation supplied.
        num_inputs: usize,
    },
    /// A verification reference disagrees with the crossbar on the input
    /// count.
    ReferenceInputMismatch {
        /// Inputs of the reference network.
        reference: usize,
        /// Inputs of the crossbar.
        crossbar: usize,
    },
    /// A row/column permutation handed to [`Crossbar::place`] was
    /// malformed (wrong length, out-of-range target, or duplicate target).
    Placement {
        /// What was wrong with the permutation.
        reason: String,
    },
    /// A cooperative budget was exhausted mid-verification.
    Budget(flowc_budget::BudgetExceeded),
}

impl fmt::Display for XbarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XbarError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} out of range (crossbar has {rows} rows)")
            }
            XbarError::ColOutOfRange { col, cols } => {
                write!(f, "column {col} out of range (crossbar has {cols} columns)")
            }
            XbarError::InputLen { got, expected } => {
                write!(f, "got {got} input values, crossbar expects {expected}")
            }
            XbarError::NoInputPort => write!(f, "crossbar has no input port"),
            XbarError::BadLiteral { input, num_inputs } => write!(
                f,
                "programmed literal references input {input} but only {num_inputs} inputs exist"
            ),
            XbarError::ReferenceInputMismatch {
                reference,
                crossbar,
            } => write!(
                f,
                "reference network has {reference} inputs but the crossbar has {crossbar}"
            ),
            XbarError::Placement { reason } => write!(f, "bad placement: {reason}"),
            XbarError::Budget(e) => write!(f, "verification interrupted: {e}"),
        }
    }
}

impl From<flowc_budget::BudgetExceeded> for XbarError {
    fn from(e: flowc_budget::BudgetExceeded) -> Self {
        XbarError::Budget(e)
    }
}

impl std::error::Error for XbarError {}

/// A crossbar design: the device grid plus input/output port bindings.
///
/// Rows are wordlines, columns are bitlines. `input_row` is the wordline
/// driven with the supply voltage during evaluation (the paper drives the
/// bottom-most wordline); each output is sensed on its own wordline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    devices: Vec<DeviceAssignment>,
    num_inputs: usize,
    input_row: Option<usize>,
    outputs: Vec<Port>,
    row_labels: Vec<String>,
    col_labels: Vec<String>,
}

impl Crossbar {
    /// Creates an all-off crossbar with `rows × cols` junctions for a
    /// function of `num_inputs` Boolean inputs.
    pub fn new(rows: usize, cols: usize, num_inputs: usize) -> Self {
        Crossbar {
            rows,
            cols,
            devices: vec![DeviceAssignment::Off; rows * cols],
            num_inputs,
            input_row: None,
            outputs: Vec::new(),
            row_labels: vec![String::new(); rows],
            col_labels: vec![String::new(); cols],
        }
    }

    /// Number of wordlines (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of Boolean inputs the device literals may reference.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn check(&self, row: usize, col: usize) -> crate::Result<()> {
        if row >= self.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        if col >= self.cols {
            return Err(XbarError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        Ok(())
    }

    /// Programs the junction at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns an error when either index is out of range.
    pub fn set(&mut self, row: usize, col: usize, a: DeviceAssignment) -> crate::Result<()> {
        self.check(row, col)?;
        self.devices[row * self.cols + col] = a;
        Ok(())
    }

    /// The junction assignment at `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns an error when either index is out of range.
    pub fn get(&self, row: usize, col: usize) -> crate::Result<DeviceAssignment> {
        self.check(row, col)?;
        Ok(self.devices[row * self.cols + col])
    }

    /// Binds the input port (driven wordline).
    ///
    /// # Errors
    ///
    /// Returns an error when `row` is out of range.
    pub fn set_input_row(&mut self, row: usize) -> crate::Result<()> {
        if row >= self.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        self.input_row = Some(row);
        Ok(())
    }

    /// The input port wordline, if bound.
    pub fn input_row(&self) -> Option<usize> {
        self.input_row
    }

    /// Adds an output port on wordline `row`.
    ///
    /// # Errors
    ///
    /// Returns an error when `row` is out of range.
    pub fn add_output(&mut self, name: impl Into<String>, row: usize) -> crate::Result<()> {
        if row >= self.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        self.outputs.push(Port {
            name: name.into(),
            row,
        });
        Ok(())
    }

    /// The output ports in binding order.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Sets a debugging label on a wordline (e.g. the BDD node it realizes).
    ///
    /// # Errors
    ///
    /// Returns an error when `row` is out of range.
    pub fn set_row_label(&mut self, row: usize, label: impl Into<String>) -> crate::Result<()> {
        if row >= self.rows {
            return Err(XbarError::RowOutOfRange {
                row,
                rows: self.rows,
            });
        }
        self.row_labels[row] = label.into();
        Ok(())
    }

    /// Sets a debugging label on a bitline.
    ///
    /// # Errors
    ///
    /// Returns an error when `col` is out of range.
    pub fn set_col_label(&mut self, col: usize, label: impl Into<String>) -> crate::Result<()> {
        if col >= self.cols {
            return Err(XbarError::ColOutOfRange {
                col,
                cols: self.cols,
            });
        }
        self.col_labels[col] = label.into();
        Ok(())
    }

    /// The label of a wordline (empty when unset or out of range).
    pub fn row_label(&self, row: usize) -> &str {
        self.row_labels.get(row).map_or("", String::as_str)
    }

    /// The label of a bitline (empty when unset or out of range).
    pub fn col_label(&self, col: usize) -> &str {
        self.col_labels.get(col).map_or("", String::as_str)
    }

    /// Iterates over all non-[`DeviceAssignment::Off`] junctions as
    /// `(row, col, assignment)`.
    pub fn programmed_devices(
        &self,
    ) -> impl Iterator<Item = (usize, usize, DeviceAssignment)> + '_ {
        self.devices.iter().enumerate().filter_map(move |(i, &a)| {
            if a == DeviceAssignment::Off {
                None
            } else {
                Some((i / self.cols, i % self.cols, a))
            }
        })
    }

    /// Programs the crossbar for an input assignment: returns the conducting
    /// state of each junction (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::InputLen`] on a wrong-sized assignment, or
    /// [`XbarError::BadLiteral`] when a programmed literal's index is out
    /// of range.
    pub fn program(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        if inputs.len() != self.num_inputs {
            return Err(XbarError::InputLen {
                got: inputs.len(),
                expected: self.num_inputs,
            });
        }
        self.devices
            .iter()
            .map(|a| a.conducts_checked(inputs))
            .collect()
    }

    /// Flow-based evaluation: programs the devices and returns, for each
    /// output port, whether a conducting path connects the input wordline to
    /// that output wordline. This is the idealised sneak-path model; see
    /// [`crate::circuit`] for the electrical version.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::NoInputPort`] when no input row is bound, or
    /// [`XbarError::InputLen`] on a wrong-sized assignment.
    pub fn evaluate(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        let reached = self.reachable_rows(inputs)?;
        Ok(self.outputs.iter().map(|p| reached[p.row]).collect())
    }

    /// The set of wordlines electrically connected to the input wordline
    /// under an assignment (BFS over the bipartite wire graph).
    ///
    /// # Errors
    ///
    /// See [`Crossbar::evaluate`].
    pub fn reachable_rows(&self, inputs: &[bool]) -> crate::Result<Vec<bool>> {
        let input_row = self.input_row.ok_or(XbarError::NoInputPort)?;
        let conducting = self.program(inputs)?;
        // Node ids: rows are 0..R, columns are R..R+C.
        let mut row_adj: Vec<Vec<usize>> = vec![Vec::new(); self.rows];
        let mut col_adj: Vec<Vec<usize>> = vec![Vec::new(); self.cols];
        for (i, &on) in conducting.iter().enumerate() {
            if on {
                let (r, c) = (i / self.cols, i % self.cols);
                row_adj[r].push(c);
                col_adj[c].push(r);
            }
        }
        let mut row_seen = vec![false; self.rows];
        let mut col_seen = vec![false; self.cols];
        let mut stack = vec![(true, input_row)];
        row_seen[input_row] = true;
        while let Some((is_row, idx)) = stack.pop() {
            if is_row {
                for &c in &row_adj[idx] {
                    if !col_seen[c] {
                        col_seen[c] = true;
                        stack.push((false, c));
                    }
                }
            } else {
                for &r in &col_adj[idx] {
                    if !row_seen[r] {
                        row_seen[r] = true;
                        stack.push((true, r));
                    }
                }
            }
        }
        Ok(row_seen)
    }

    /// Evaluates 64 input assignments at once: bit `k` of `input_words[i]`
    /// is input `i` in assignment `k`; bit `k` of output word `j` reports
    /// output `j` under assignment `k`. Reachability is propagated as lane
    /// masks to a fixpoint, so the cost is shared across all 64 lanes —
    /// this is what makes large verification sweeps cheap.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::NoInputPort`] when no input row is bound, or
    /// [`XbarError::InputLen`] on a wrong-sized assignment.
    pub fn evaluate64(&self, input_words: &[u64]) -> crate::Result<Vec<u64>> {
        let input_row = self.input_row.ok_or(XbarError::NoInputPort)?;
        if input_words.len() != self.num_inputs {
            return Err(XbarError::InputLen {
                got: input_words.len(),
                expected: self.num_inputs,
            });
        }
        // Conductance mask per programmed device.
        let mut devices: Vec<(usize, usize, u64)> = Vec::new();
        for (r, c, a) in self.programmed_devices() {
            let mask = match a {
                DeviceAssignment::Off => 0,
                DeviceAssignment::On => u64::MAX,
                DeviceAssignment::Literal { input, negated } => {
                    let word = *input_words.get(input).ok_or(XbarError::BadLiteral {
                        input,
                        num_inputs: input_words.len(),
                    })?;
                    if negated {
                        !word
                    } else {
                        word
                    }
                }
            };
            if mask != 0 {
                devices.push((r, c, mask));
            }
        }
        let mut row_reach = vec![0u64; self.rows];
        let mut col_reach = vec![0u64; self.cols];
        row_reach[input_row] = u64::MAX;
        // Fixpoint propagation over the bipartite wire graph; terminates in
        // at most rows+cols sweeps (each sweep extends shortest paths).
        loop {
            let mut changed = false;
            for &(r, c, mask) in &devices {
                let to_col = row_reach[r] & mask & !col_reach[c];
                if to_col != 0 {
                    col_reach[c] |= to_col;
                    changed = true;
                }
                let to_row = col_reach[c] & mask & !row_reach[r];
                if to_row != 0 {
                    row_reach[r] |= to_row;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(self.outputs.iter().map(|p| row_reach[p.row]).collect())
    }

    /// Re-places the design onto a (possibly larger) physical grid:
    /// logical row `r` lands on physical wordline `row_perm[r]`, logical
    /// column `c` on physical bitline `col_perm[c]`. Devices, port
    /// bindings, and labels all move together; physical lines not in the
    /// image of the permutation are left all-[`DeviceAssignment::Off`]
    /// (spare lines). This is the mechanism the defect-aware repair pass
    /// uses to steer programmed junctions away from faulty cells.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::Placement`] when a permutation has the wrong
    /// length, targets an out-of-range line, or maps two logical lines to
    /// the same physical line.
    pub fn place(
        &self,
        row_perm: &[usize],
        col_perm: &[usize],
        phys_rows: usize,
        phys_cols: usize,
    ) -> crate::Result<Crossbar> {
        let check_perm = |perm: &[usize], len: usize, bound: usize, kind: &str| {
            if perm.len() != len {
                return Err(XbarError::Placement {
                    reason: format!("{kind} permutation has {} entries, need {len}", perm.len()),
                });
            }
            let mut used = vec![false; bound];
            for &p in perm {
                if p >= bound {
                    return Err(XbarError::Placement {
                        reason: format!("{kind} target {p} out of range (physical size {bound})"),
                    });
                }
                if used[p] {
                    return Err(XbarError::Placement {
                        reason: format!("{kind} target {p} used twice"),
                    });
                }
                used[p] = true;
            }
            Ok(())
        };
        check_perm(row_perm, self.rows, phys_rows, "row")?;
        check_perm(col_perm, self.cols, phys_cols, "column")?;
        let mut placed = Crossbar::new(phys_rows, phys_cols, self.num_inputs);
        for (r, c, a) in self.programmed_devices() {
            placed.devices[row_perm[r] * phys_cols + col_perm[c]] = a;
        }
        if let Some(input_row) = self.input_row {
            placed.input_row = Some(row_perm[input_row]);
        }
        for p in &self.outputs {
            placed.outputs.push(Port {
                name: p.name.clone(),
                row: row_perm[p.row],
            });
        }
        for (r, label) in self.row_labels.iter().enumerate() {
            placed.row_labels[row_perm[r]] = label.clone();
        }
        for (c, label) in self.col_labels.iter().enumerate() {
            placed.col_labels[col_perm[c]] = label.clone();
        }
        Ok(placed)
    }

    /// Renders the device grid as text (one row per wordline), as in the
    /// paper's Figure 2(c) matrices. Intended for debugging small designs.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in 0..self.rows {
            for c in 0..self.cols {
                let a = self.devices[r * self.cols + c];
                let _ = write!(out, "{:>4}", a.to_string());
            }
            let mut tags = Vec::new();
            if Some(r) == self.input_row {
                tags.push("in".to_string());
            }
            for p in &self.outputs {
                if p.row == r {
                    tags.push(format!("out:{}", p.name));
                }
            }
            if tags.is_empty() {
                let _ = writeln!(out);
            } else {
                let _ = writeln!(out, "   <- {}", tags.join(","));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 crossbar for f = (a ∧ b) ∨ c.
    ///
    /// Wires: rows = [1-terminal (input), node b, node a (output root)],
    /// cols = [node c's bitline / bridge structure]. We reproduce the spirit
    /// with an explicit hand mapping:
    ///   row0 = input (terminal 1), row1 = internal, row2 = output.
    fn fig2_crossbar() -> Crossbar {
        // f = (a AND b) OR c over inputs [a, b, c].
        // Layout: col0 connects row0-row1 via literal b; col1 connects
        // row1-row2 via literal a; col2 connects row0-row2 via literal c.
        let mut x = Crossbar::new(3, 3, 3);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set(
            0,
            2,
            DeviceAssignment::Literal {
                input: 2,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 2).unwrap();
        x
    }

    #[test]
    fn fig2_truth_table() {
        let x = fig2_crossbar();
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let out = x.evaluate(&[a, b, c]).unwrap();
            assert_eq!(out, vec![(a && b) || c], "{bits:03b}");
        }
    }

    #[test]
    fn assignments_conduct_correctly() {
        let on = DeviceAssignment::On;
        let off = DeviceAssignment::Off;
        let lit = DeviceAssignment::Literal {
            input: 0,
            negated: false,
        };
        let nlit = DeviceAssignment::Literal {
            input: 0,
            negated: true,
        };
        assert!(on.conducts(&[false]));
        assert!(!off.conducts(&[true]));
        assert!(lit.conducts(&[true]) && !lit.conducts(&[false]));
        assert!(nlit.conducts(&[false]) && !nlit.conducts(&[true]));
        assert!(lit.is_literal() && nlit.is_literal());
        assert!(!on.is_literal() && !off.is_literal());
    }

    #[test]
    fn bounds_checked() {
        let mut x = Crossbar::new(2, 2, 1);
        assert!(matches!(
            x.set(2, 0, DeviceAssignment::On),
            Err(XbarError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            x.set(0, 5, DeviceAssignment::On),
            Err(XbarError::ColOutOfRange { .. })
        ));
        assert!(x.set_input_row(3).is_err());
        assert!(x.add_output("f", 9).is_err());
        assert!(x.get(0, 0).is_ok());
    }

    #[test]
    fn missing_input_port_is_error() {
        let x = Crossbar::new(2, 2, 1);
        assert_eq!(x.evaluate(&[true]).unwrap_err(), XbarError::NoInputPort);
    }

    #[test]
    fn wrong_input_len_is_error() {
        let x = fig2_crossbar();
        assert!(matches!(
            x.evaluate(&[true]),
            Err(XbarError::InputLen {
                got: 1,
                expected: 3
            })
        ));
    }

    #[test]
    fn no_path_through_off_devices() {
        let mut x = Crossbar::new(2, 1, 1);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        // row1-col0 left Off: even with the literal on, row 1 is unreachable.
        x.set_input_row(0).unwrap();
        x.add_output("f", 1).unwrap();
        assert_eq!(x.evaluate(&[true]).unwrap(), vec![false]);
    }

    #[test]
    fn multi_output_sensing() {
        // Input row 0; outputs on rows 1 and 2 with different literals.
        let mut x = Crossbar::new(3, 2, 2);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            0,
            1,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f0", 1).unwrap();
        x.add_output("f1", 2).unwrap();
        assert_eq!(x.evaluate(&[true, false]).unwrap(), vec![true, false]);
        assert_eq!(x.evaluate(&[false, true]).unwrap(), vec![false, true]);
        assert_eq!(x.evaluate(&[true, true]).unwrap(), vec![true, true]);
    }

    #[test]
    fn evaluate64_agrees_with_scalar_on_fig2() {
        let x = fig2_crossbar();
        // Pack all 8 assignments into the low lanes.
        let mut words = vec![0u64; 3];
        for lane in 0..8u64 {
            for (i, w) in words.iter_mut().enumerate() {
                if lane >> i & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        let wide = x.evaluate64(&words).unwrap();
        assert_eq!(wide.len(), 1);
        for lane in 0..8u64 {
            let ins: Vec<bool> = (0..3).map(|i| lane >> i & 1 == 1).collect();
            let scalar = x.evaluate(&ins).unwrap()[0];
            assert_eq!(wide[0] >> lane & 1 == 1, scalar, "lane {lane}");
        }
    }

    #[test]
    fn evaluate64_checks_arity_and_port() {
        let x = fig2_crossbar();
        assert!(matches!(
            x.evaluate64(&[0]),
            Err(XbarError::InputLen {
                got: 1,
                expected: 3
            })
        ));
        let no_port = Crossbar::new(2, 2, 1);
        assert_eq!(
            no_port.evaluate64(&[0]).unwrap_err(),
            XbarError::NoInputPort
        );
    }

    #[test]
    fn programmed_devices_iterator() {
        let x = fig2_crossbar();
        let devs: Vec<_> = x.programmed_devices().collect();
        assert_eq!(devs.len(), 6);
        assert_eq!(devs.iter().filter(|(_, _, a)| a.is_literal()).count(), 3);
    }

    #[test]
    fn render_marks_ports() {
        let x = fig2_crossbar();
        let text = x.render();
        assert!(text.contains("<- in"));
        assert!(text.contains("out:f"));
        assert!(text.contains("x2"));
    }

    #[test]
    fn bad_literal_is_a_typed_error_not_a_panic() {
        let mut x = Crossbar::new(2, 1, 1);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 7,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 1).unwrap();
        assert_eq!(
            x.program(&[true]).unwrap_err(),
            XbarError::BadLiteral {
                input: 7,
                num_inputs: 1
            }
        );
        assert!(matches!(
            x.evaluate(&[true]),
            Err(XbarError::BadLiteral { input: 7, .. })
        ));
        assert!(matches!(
            x.evaluate64(&[0]),
            Err(XbarError::BadLiteral { input: 7, .. })
        ));
        let bad = DeviceAssignment::Literal {
            input: 7,
            negated: true,
        };
        assert!(matches!(
            bad.conducts_checked(&[true]),
            Err(XbarError::BadLiteral { .. })
        ));
    }

    #[test]
    fn place_identity_preserves_function() {
        let x = fig2_crossbar();
        let id_rows: Vec<usize> = (0..x.rows()).collect();
        let id_cols: Vec<usize> = (0..x.cols()).collect();
        let placed = x.place(&id_rows, &id_cols, x.rows(), x.cols()).unwrap();
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                placed.evaluate(&ins).unwrap(),
                x.evaluate(&ins).unwrap(),
                "{bits:03b}"
            );
        }
    }

    #[test]
    fn place_permutes_and_adds_spares() {
        let x = fig2_crossbar();
        // Shuffle rows and columns into a 5×4 physical array with spares.
        let placed = x.place(&[4, 0, 2], &[3, 1, 0], 5, 4).unwrap();
        assert_eq!(placed.rows(), 5);
        assert_eq!(placed.cols(), 4);
        assert_eq!(placed.input_row(), Some(4));
        assert_eq!(placed.outputs()[0].row, 2);
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                placed.evaluate(&ins).unwrap(),
                x.evaluate(&ins).unwrap(),
                "{bits:03b}"
            );
        }
        // Spare row 1 and spare column 2 carry no devices.
        for c in 0..4 {
            assert_eq!(placed.get(1, c).unwrap(), DeviceAssignment::Off);
        }
        for r in 0..5 {
            assert_eq!(placed.get(r, 2).unwrap(), DeviceAssignment::Off);
        }
    }

    #[test]
    fn place_rejects_malformed_permutations() {
        let x = fig2_crossbar();
        // Wrong length.
        assert!(matches!(
            x.place(&[0, 1], &[0, 1, 2], 3, 3),
            Err(XbarError::Placement { .. })
        ));
        // Out of range.
        assert!(matches!(
            x.place(&[0, 1, 5], &[0, 1, 2], 3, 3),
            Err(XbarError::Placement { .. })
        ));
        // Duplicate target.
        assert!(matches!(
            x.place(&[0, 1, 1], &[0, 1, 2], 3, 3),
            Err(XbarError::Placement { .. })
        ));
    }

    #[test]
    fn labels_roundtrip() {
        let mut x = Crossbar::new(2, 2, 1);
        x.set_row_label(0, "root").unwrap();
        x.set_col_label(1, "n3").unwrap();
        assert_eq!(x.row_label(0), "root");
        assert_eq!(x.col_label(1), "n3");
        assert_eq!(x.row_label(1), "");
        assert!(x.set_row_label(5, "bad").is_err());
    }
}

//! DC nodal analysis of the crossbar's resistive network — the stand-in for
//! the paper's SPICE validation.
//!
//! Every wordline and bitline is a circuit node; every non-off junction is a
//! resistor (`r_on` when conducting, `r_off` otherwise). The input wordline
//! is driven at `v_in`, each output wordline is tied to ground through a
//! sensing resistor, and the resulting linear system `G·v = b` is solved by
//! dense Gaussian elimination with partial pivoting. A high sensed voltage
//! indicates a conducting sneak path, i.e. a true function output.

use crate::{Crossbar, Result, XbarError};

/// Device and measurement parameters of the electrical model. Defaults
/// match the flow-based-computing literature's HfO₂-style devices:
/// `Ron = 1 kΩ`, `Roff = 10 MΩ` (a 10⁴ on/off ratio), sensing resistor
/// `100 kΩ`, 1 V supply. The large ratio is what keeps a long series
/// on-path distinguishable from the aggregate off-state leakage of a big
/// crossbar.
#[derive(Debug, Clone, Copy)]
pub struct ElectricalModel {
    /// Supply voltage applied to the input wordline.
    pub v_in: f64,
    /// Low (conducting) memristor resistance, ohms.
    pub r_on: f64,
    /// High (blocking) memristor resistance, ohms.
    pub r_off: f64,
    /// Sensing resistor from each output wordline to ground, ohms.
    pub r_sense: f64,
    /// Tiny leak conductance to ground on every node, for numerical
    /// regularization of floating wires.
    pub g_leak: f64,
}

impl Default for ElectricalModel {
    fn default() -> Self {
        ElectricalModel {
            v_in: 1.0,
            r_on: 1e3,
            r_off: 1e7,
            r_sense: 1e5,
            g_leak: 1e-12,
        }
    }
}

impl ElectricalModel {
    /// Solves the crossbar network under `inputs` and returns the sensed
    /// voltage on each output port, in port order.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::NoInputPort`] when no input row is bound, or
    /// [`XbarError::InputLen`] on a wrong-sized assignment.
    pub fn output_voltages(&self, xbar: &Crossbar, inputs: &[bool]) -> Result<Vec<f64>> {
        let input_row = xbar.input_row().ok_or(XbarError::NoInputPort)?;
        let conducting = xbar.program(inputs)?;
        let rows = xbar.rows();
        let cols = xbar.cols();
        // Node numbering: rows 0..rows, cols rows..rows+cols. The input row
        // is a Dirichlet node (fixed at v_in) and is eliminated.
        let total = rows + cols;
        let mut idx = vec![usize::MAX; total];
        let mut unknowns = 0usize;
        for (node, slot) in idx.iter_mut().enumerate() {
            if node != input_row {
                *slot = unknowns;
                unknowns += 1;
            }
        }
        let mut g = vec![vec![0.0f64; unknowns]; unknowns];
        let mut b = vec![0.0f64; unknowns];
        for (i, node) in idx.iter().enumerate().take(total) {
            if *node != usize::MAX {
                g[*node][*node] += self.g_leak;
            }
            let _ = i;
        }
        // Junction resistors.
        for (r, c, a) in xbar.programmed_devices() {
            let on = conducting[r * cols + c];
            let _ = a;
            let conductance = if on {
                1.0 / self.r_on
            } else {
                1.0 / self.r_off
            };
            stamp(
                &mut g,
                &mut b,
                &idx,
                (r, rows + c),
                conductance,
                input_row,
                self.v_in,
            );
        }
        // Sensing resistors to ground on output rows.
        for port in xbar.outputs() {
            if port.row != input_row {
                let i = idx[port.row];
                g[i][i] += 1.0 / self.r_sense;
            }
        }
        let v = solve_dense(g, b);
        Ok(xbar
            .outputs()
            .iter()
            .map(|p| {
                if p.row == input_row {
                    self.v_in
                } else {
                    v[idx[p.row]]
                }
            })
            .collect())
    }

    /// Evaluates the crossbar electrically with a fixed decision threshold:
    /// an output is logic 1 when its sensed voltage exceeds
    /// `threshold_fraction · v_in`.
    ///
    /// # Errors
    ///
    /// See [`ElectricalModel::output_voltages`].
    pub fn evaluate(
        &self,
        xbar: &Crossbar,
        inputs: &[bool],
        threshold_fraction: f64,
    ) -> Result<Vec<bool>> {
        Ok(self
            .output_voltages(xbar, inputs)?
            .into_iter()
            .map(|v| v > threshold_fraction * self.v_in)
            .collect())
    }
}

/// Stamps a conductance between two nodes, folding Dirichlet terms into `b`.
fn stamp(
    g: &mut [Vec<f64>],
    b: &mut [f64],
    idx: &[usize],
    (n1, n2): (usize, usize),
    conductance: f64,
    dirichlet: usize,
    v_in: f64,
) {
    let i1 = if n1 == dirichlet { usize::MAX } else { idx[n1] };
    let i2 = if n2 == dirichlet { usize::MAX } else { idx[n2] };
    match (i1, i2) {
        (usize::MAX, usize::MAX) => {}
        (usize::MAX, j) => {
            g[j][j] += conductance;
            b[j] += conductance * v_in;
        }
        (i, usize::MAX) => {
            g[i][i] += conductance;
            b[i] += conductance * v_in;
        }
        (i, j) => {
            g[i][i] += conductance;
            g[j][j] += conductance;
            g[i][j] -= conductance;
            g[j][i] -= conductance;
        }
    }
}

/// Dense Gaussian elimination with partial pivoting.
fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot selection.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("no NaN")
            })
            .expect("nonempty");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-30 {
            continue; // isolated node held at ~0 by the leak conductance
        }
        for row in (col + 1)..n {
            let factor = a[row][col] / p;
            if factor != 0.0 {
                let (upper, lower) = a.split_at_mut(row);
                for (dst, &src) in lower[0][col..].iter_mut().zip(&upper[col][col..]) {
                    *dst -= factor * src;
                }
                b[row] -= factor * b[col];
            }
        }
    }
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for k in (col + 1)..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-30 {
            0.0
        } else {
            sum / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceAssignment;

    /// Two wires bridged by a single device, sensed through Rs: a classic
    /// voltage divider.
    fn divider(on: bool) -> f64 {
        let mut x = Crossbar::new(2, 1, 1);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 1).unwrap();
        let m = ElectricalModel::default();
        m.output_voltages(&x, &[on]).unwrap()[0]
    }

    #[test]
    fn voltage_divider_matches_hand_calculation() {
        // Path: Vin - R(lit) - bitline - R(on) - output row - Rs - gnd.
        // On: V = Rs / (Rs + 2·Ron) = 1e5 / 1.02e5 ≈ 0.9804.
        let v_on = divider(true);
        assert!((v_on - 1e5 / 1.02e5).abs() < 1e-6, "got {v_on}");
        // Off: V = Rs / (Rs + Roff + Ron) ≈ 0.0099.
        let v_off = divider(false);
        assert!(
            (v_off - 1e5 / (1e5 + 1e7 + 1e3)).abs() < 1e-6,
            "got {v_off}"
        );
        assert!(v_on > 50.0 * v_off, "on/off separation");
    }

    #[test]
    fn electrical_agrees_with_flow_on_fig2() {
        // f = (a ∧ b) ∨ c mapped by hand (same design as the model tests).
        let mut x = Crossbar::new(3, 3, 3);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set(
            0,
            2,
            DeviceAssignment::Literal {
                input: 2,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 2).unwrap();
        let m = ElectricalModel::default();
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let flow = x.evaluate(&ins).unwrap();
            let elec = m.evaluate(&x, &ins, 0.3).unwrap();
            assert_eq!(flow, elec, "assignment {bits:03b}");
        }
    }

    #[test]
    fn floating_output_reads_near_zero() {
        let mut x = Crossbar::new(2, 1, 1);
        // No devices at all; output floats, leak pulls it to ground.
        x.set_input_row(0).unwrap();
        x.add_output("f", 1).unwrap();
        let v = ElectricalModel::default()
            .output_voltages(&x, &[true])
            .unwrap()[0];
        assert!(v.abs() < 1e-3, "got {v}");
    }

    #[test]
    fn multiple_outputs_sensed_independently() {
        let mut x = Crossbar::new(3, 2, 2);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            0,
            1,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f0", 1).unwrap();
        x.add_output("f1", 2).unwrap();
        let m = ElectricalModel::default();
        let v = m.output_voltages(&x, &[true, false]).unwrap();
        assert!(v[0] > 0.5 && v[1] < 0.1, "got {v:?}");
    }

    #[test]
    fn errors_propagate() {
        let x = Crossbar::new(2, 2, 1);
        let m = ElectricalModel::default();
        assert!(m.output_voltages(&x, &[true]).is_err()); // no input port
    }
}

//! The paper's crossbar cost model: semiperimeter, maximum dimension, area,
//! power, and computation delay.

use crate::Crossbar;

/// Size and cost figures of a crossbar design, as reported in the paper's
/// tables (Section VIII): `S = R + C`, `D = max(R, C)`, area `R·C`, power
/// proportional to the number of literal-programmed memristors, and delay
/// `R + 1` time steps (one programming step per wordline plus one
/// evaluation step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarMetrics {
    /// Wordlines.
    pub rows: usize,
    /// Bitlines.
    pub cols: usize,
    /// Semiperimeter `R + C`.
    pub semiperimeter: usize,
    /// Maximum dimension `max(R, C)`.
    pub max_dimension: usize,
    /// Area `R × C`.
    pub area: usize,
    /// Junctions assigned a literal (the power proxy of Section VIII-E).
    pub active_devices: usize,
    /// Junctions programmed permanently on (`VH` bridges and merges).
    pub bridge_devices: usize,
    /// Evaluation-phase time steps: `rows + 1`.
    pub delay_steps: usize,
    /// Crossbar tiles the design occupies. `1` for a monolithic design;
    /// partitioned (area-constrained) mappings count one per scheduled
    /// tile.
    pub tiles: usize,
    /// Inter-tile transfer operations: input re-deliveries (and other
    /// data movement) a tile schedule performs beyond what a monolithic
    /// design needs. `0` for monolithic designs.
    pub transfer_ops: usize,
}

impl CrossbarMetrics {
    /// Measures a crossbar.
    pub fn of(xbar: &Crossbar) -> Self {
        let rows = xbar.rows();
        let cols = xbar.cols();
        let mut active = 0usize;
        let mut bridges = 0usize;
        for (_, _, a) in xbar.programmed_devices() {
            if a.is_literal() {
                active += 1;
            } else {
                bridges += 1;
            }
        }
        CrossbarMetrics {
            rows,
            cols,
            semiperimeter: rows + cols,
            max_dimension: rows.max(cols),
            area: rows * cols,
            active_devices: active,
            bridge_devices: bridges,
            delay_steps: rows + 1,
            tiles: 1,
            transfer_ops: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceAssignment;

    #[test]
    fn metrics_of_small_design() {
        let mut x = Crossbar::new(3, 5, 2);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 1,
                negated: true,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        let m = CrossbarMetrics::of(&x);
        assert_eq!(m.rows, 3);
        assert_eq!(m.cols, 5);
        assert_eq!(m.semiperimeter, 8);
        assert_eq!(m.max_dimension, 5);
        assert_eq!(m.area, 15);
        assert_eq!(m.active_devices, 2);
        assert_eq!(m.bridge_devices, 1);
        assert_eq!(m.delay_steps, 4);
        assert_eq!(m.tiles, 1);
        assert_eq!(m.transfer_ops, 0);
    }

    #[test]
    fn empty_crossbar() {
        let x = Crossbar::new(0, 0, 0);
        let m = CrossbarMetrics::of(&x);
        assert_eq!(m.semiperimeter, 0);
        assert_eq!(m.area, 0);
        assert_eq!(m.active_devices, 0);
        assert_eq!(m.delay_steps, 1);
    }
}

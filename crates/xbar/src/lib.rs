//! Nanoscale memristor crossbar model for flow-based in-memory computing.
//!
//! A [`Crossbar`] is a grid of memristor junctions between wordlines (rows)
//! and bitlines (columns). Each junction carries a [`DeviceAssignment`]:
//! permanently off, permanently on (logic `1`), or a literal of a Boolean
//! input. Evaluating an input assignment programs each literal device to a
//! low- or high-resistance state and checks for a conducting *sneak path*
//! from the input wordline to each output wordline:
//!
//! - [`Crossbar::evaluate`] does this as graph reachability (the idealised
//!   flow model the paper's mapping correctness rests on), and
//! - [`circuit::ElectricalModel`] does it as DC nodal analysis of the full
//!   resistive network with realistic on/off resistances and a sensing
//!   resistor — our stand-in for the paper's SPICE validation.
//!
//! [`metrics::CrossbarMetrics`] reports the paper's cost model:
//! semiperimeter, maximum dimension, area, power (number of programmed
//! literal devices) and delay (`rows + 1` time steps).
//!
//! [`fault`] models manufacturing defects (stuck-off/stuck-on junctions,
//! open wordlines/bitlines) with a typed [`fault::DefectMap`], a seedable
//! injection engine, and benign/functional classification against a
//! reference network — the substrate of the defect-aware repair pass in
//! `flowc-compact`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod fault;
pub mod metrics;
mod model;
pub mod rng;
pub mod svg;
pub mod variation;
pub mod verify;

pub use model::{Crossbar, DeviceAssignment, Port, XbarError};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, XbarError>;

//! Manufacturing-defect modeling for crossbar designs: a typed defect map
//! (stuck-off / stuck-on junctions, open wordlines / bitlines), a
//! deterministic seedable fault-injection engine, and benign/functional
//! classification of defects against a reference network.
//!
//! Real ReRAM arrays ship with a percentage of unprogrammable junctions
//! and the occasional broken nanowire; a mapping that is only valid on a
//! perfect array is not manufacturable. This module provides the fault
//! side of defect tolerance; the repair side (steering programmed devices
//! away from bad cells) lives in the `flowc-compact` crate.
//!
//! The defect semantics follow the flow-based-computing fault literature:
//!
//! - **stuck-off**: the junction is permanently high-resistance — any
//!   assignment programmed there reads as [`DeviceAssignment::Off`];
//! - **stuck-on**: permanently low-resistance — reads as
//!   [`DeviceAssignment::On`], bridging its wordline and bitline;
//! - **open wordline / bitline**: the nanowire is severed — no junction on
//!   the line can carry current, so every cell on it acts stuck-off (an
//!   open dominates a stuck-on junction on the same line).

use std::collections::BTreeSet;
use std::fmt;

use flowc_logic::Network;

use crate::rng::XorShift64;
use crate::verify::verify_functional;
use crate::{Crossbar, DeviceAssignment, Result, XbarError};

/// A single manufacturing defect on a physical crossbar array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Fault {
    /// Junction permanently high-resistance (cannot be programmed on).
    StuckOff {
        /// Wordline of the faulty junction.
        row: usize,
        /// Bitline of the faulty junction.
        col: usize,
    },
    /// Junction permanently low-resistance (cannot be programmed off).
    StuckOn {
        /// Wordline of the faulty junction.
        row: usize,
        /// Bitline of the faulty junction.
        col: usize,
    },
    /// Severed wordline: no junction on the row conducts.
    OpenWordline {
        /// The broken row.
        row: usize,
    },
    /// Severed bitline: no junction on the column conducts.
    OpenBitline {
        /// The broken column.
        col: usize,
    },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::StuckOff { row, col } => write!(f, "stuck-off {row} {col}"),
            Fault::StuckOn { row, col } => write!(f, "stuck-on {row} {col}"),
            Fault::OpenWordline { row } => write!(f, "open-row {row}"),
            Fault::OpenBitline { col } => write!(f, "open-col {col}"),
        }
    }
}

/// The effective state of one physical cell once all defects (junction
/// stucks and line opens) are accounted for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellState {
    /// Programmable as designed.
    Healthy,
    /// Reads as permanently off (stuck-off junction or an open line —
    /// opens dominate, since a severed wire conducts nothing).
    ForcedOff,
    /// Reads as permanently on.
    ForcedOn,
}

/// Error from parsing a textual defect map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for DefectParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "defect map line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DefectParseError {}

/// A typed, deduplicated defect map over a physical array of known size.
///
/// The textual format (read by `flowc --defect-map`, written by
/// [`fmt::Display`]) is line-oriented: a `dims R C` header, then one fault
/// per line (`stuck-off r c`, `stuck-on r c`, `open-row r`, `open-col c`),
/// with `#` comments and blank lines ignored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefectMap {
    rows: usize,
    cols: usize,
    faults: BTreeSet<Fault>,
}

impl DefectMap {
    /// An empty defect map for a `rows × cols` physical array.
    pub fn new(rows: usize, cols: usize) -> Self {
        DefectMap {
            rows,
            cols,
            faults: BTreeSet::new(),
        }
    }

    /// Physical wordline count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Physical bitline count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of recorded (deduplicated) faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the array is defect-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterates the faults in a deterministic (sorted) order.
    pub fn faults(&self) -> impl Iterator<Item = Fault> + '_ {
        self.faults.iter().copied()
    }

    /// Records a fault. Duplicates are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`XbarError::RowOutOfRange`] / [`XbarError::ColOutOfRange`]
    /// when the fault lies outside the physical array.
    pub fn add(&mut self, fault: Fault) -> Result<()> {
        let (row, col) = match fault {
            Fault::StuckOff { row, col } | Fault::StuckOn { row, col } => (Some(row), Some(col)),
            Fault::OpenWordline { row } => (Some(row), None),
            Fault::OpenBitline { col } => (None, Some(col)),
        };
        if let Some(row) = row {
            if row >= self.rows {
                return Err(XbarError::RowOutOfRange {
                    row,
                    rows: self.rows,
                });
            }
        }
        if let Some(col) = col {
            if col >= self.cols {
                return Err(XbarError::ColOutOfRange {
                    col,
                    cols: self.cols,
                });
            }
        }
        self.faults.insert(fault);
        Ok(())
    }

    /// Whether the wordline is severed.
    pub fn is_open_row(&self, row: usize) -> bool {
        self.faults.contains(&Fault::OpenWordline { row })
    }

    /// Whether the bitline is severed.
    pub fn is_open_col(&self, col: usize) -> bool {
        self.faults.contains(&Fault::OpenBitline { col })
    }

    /// The effective state of a physical cell: line opens dominate junction
    /// stucks, and stuck-off dominates stuck-on (a junction both recorded
    /// stuck-off and stuck-on cannot conduct reliably, so it is treated as
    /// off).
    pub fn cell_state(&self, row: usize, col: usize) -> CellState {
        if self.is_open_row(row)
            || self.is_open_col(col)
            || self.faults.contains(&Fault::StuckOff { row, col })
        {
            CellState::ForcedOff
        } else if self.faults.contains(&Fault::StuckOn { row, col }) {
            CellState::ForcedOn
        } else {
            CellState::Healthy
        }
    }

    /// Parses the textual format (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Returns a [`DefectParseError`] naming the offending line for syntax
    /// errors, a missing/duplicate `dims` header, or out-of-range faults.
    pub fn parse(text: &str) -> std::result::Result<DefectMap, DefectParseError> {
        let mut map: Option<DefectMap> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = i + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let fields: Vec<&str> = content.split_whitespace().collect();
            let err = |message: String| DefectParseError { line, message };
            let num = |s: &str| {
                s.parse::<usize>()
                    .map_err(|_| err(format!("`{s}` is not a non-negative integer")))
            };
            match fields.as_slice() {
                ["dims", r, c] => {
                    if map.is_some() {
                        return Err(err("duplicate `dims` header".into()));
                    }
                    map = Some(DefectMap::new(num(r)?, num(c)?));
                }
                [kind, rest @ ..] => {
                    let map = map
                        .as_mut()
                        .ok_or_else(|| err("`dims R C` header must come first".into()))?;
                    let fault = match (*kind, rest) {
                        ("stuck-off", [r, c]) => Fault::StuckOff {
                            row: num(r)?,
                            col: num(c)?,
                        },
                        ("stuck-on", [r, c]) => Fault::StuckOn {
                            row: num(r)?,
                            col: num(c)?,
                        },
                        ("open-row", [r]) => Fault::OpenWordline { row: num(r)? },
                        ("open-col", [c]) => Fault::OpenBitline { col: num(c)? },
                        _ => return Err(err(format!("unrecognized fault line `{content}`"))),
                    };
                    map.add(fault).map_err(|e| err(e.to_string()))?;
                }
                [] => unreachable!("empty lines skipped above"),
            }
        }
        map.ok_or(DefectParseError {
            line: 0,
            message: "empty defect map (no `dims R C` header)".into(),
        })
    }
}

impl fmt::Display for DefectMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dims {} {}", self.rows, self.cols)?;
        for fault in &self.faults {
            writeln!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// Per-cell and per-line defect probabilities for the injection engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectRates {
    /// Probability that a junction is stuck-off.
    pub stuck_off: f64,
    /// Probability that a junction is stuck-on.
    pub stuck_on: f64,
    /// Probability that a wordline or bitline is severed.
    pub open_line: f64,
}

impl DefectRates {
    /// The conventional split for a total junction-defect density `p`:
    /// stuck-off faults dominate real arrays roughly 3:1, and line opens
    /// are far rarer than junction defects (two orders of magnitude here).
    pub fn uniform(p: f64) -> Self {
        DefectRates {
            stuck_off: 0.75 * p,
            stuck_on: 0.25 * p,
            open_line: 0.01 * p,
        }
    }
}

/// Deterministically samples a defect map for a `rows × cols` physical
/// array. The same `(rows, cols, rates, seed)` always produces the same
/// map, independent of platform — campaigns and CI are reproducible.
pub fn inject(rows: usize, cols: usize, rates: &DefectRates, seed: u64) -> DefectMap {
    let mut rng = XorShift64::new(seed);
    let mut map = DefectMap::new(rows, cols);
    for row in 0..rows {
        for col in 0..cols {
            // One draw decides the cell so the two junction fault kinds are
            // mutually exclusive, as they are physically.
            let u = rng.uniform();
            let fault = if u < rates.stuck_off {
                Some(Fault::StuckOff { row, col })
            } else if u < rates.stuck_off + rates.stuck_on {
                Some(Fault::StuckOn { row, col })
            } else {
                None
            };
            if let Some(f) = fault {
                map.add(f).expect("in range by construction");
            }
        }
    }
    for row in 0..rows {
        if rng.chance(rates.open_line) {
            map.add(Fault::OpenWordline { row })
                .expect("in range by construction");
        }
    }
    for col in 0..cols {
        if rng.chance(rates.open_line) {
            map.add(Fault::OpenBitline { col })
                .expect("in range by construction");
        }
    }
    map
}

/// Applies a defect map to a crossbar, returning the array as manufactured:
/// forced-off cells read [`DeviceAssignment::Off`] whatever was programmed,
/// forced-on cells read [`DeviceAssignment::On`].
///
/// # Errors
///
/// Returns [`XbarError::Placement`] when the map's dimensions do not match
/// the crossbar's (apply defects to the *placed* design, not the logical
/// one).
pub fn apply_defects(xbar: &Crossbar, map: &DefectMap) -> Result<Crossbar> {
    if map.rows() != xbar.rows() || map.cols() != xbar.cols() {
        return Err(XbarError::Placement {
            reason: format!(
                "defect map is {}x{} but the crossbar is {}x{}",
                map.rows(),
                map.cols(),
                xbar.rows(),
                xbar.cols()
            ),
        });
    }
    // Must-stay clone: injection is non-destructive by contract — every
    // campaign trial derives a fresh faulty copy from the pristine design.
    let mut faulty = xbar.clone();
    for fault in map.faults() {
        match fault {
            Fault::StuckOff { row, col } => faulty.set(row, col, DeviceAssignment::Off)?,
            Fault::StuckOn { row, col } => {
                // An open line on the same cell dominates; cell_state
                // resolves the precedence.
                if map.cell_state(row, col) == CellState::ForcedOn {
                    faulty.set(row, col, DeviceAssignment::On)?;
                }
            }
            Fault::OpenWordline { row } => {
                for col in 0..faulty.cols() {
                    faulty.set(row, col, DeviceAssignment::Off)?;
                }
            }
            Fault::OpenBitline { col } => {
                for row in 0..faulty.rows() {
                    faulty.set(row, col, DeviceAssignment::Off)?;
                }
            }
        }
    }
    Ok(faulty)
}

/// How a defect (or a whole defect map) affects a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultImpact {
    /// The defective array still computes the reference function on every
    /// checked assignment.
    Benign,
    /// The defective array mismatches the reference.
    Functional,
}

/// One fault with its classified impact on a specific design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassifiedFault {
    /// The injected fault.
    pub fault: Fault,
    /// Whether the design survives it.
    pub impact: FaultImpact,
}

/// Classifies the defect map *as a whole* against the reference network:
/// applies every fault and runs functional verification.
///
/// # Errors
///
/// Propagates dimension-mismatch and verification errors.
pub fn classify_map(
    xbar: &Crossbar,
    reference: &Network,
    map: &DefectMap,
    samples: usize,
) -> Result<FaultImpact> {
    let faulty = apply_defects(xbar, map)?;
    let report = verify_functional(&faulty, reference, samples)?;
    Ok(if report.mismatches.is_empty() {
        FaultImpact::Benign
    } else {
        FaultImpact::Functional
    })
}

/// Classifies each fault of the map *individually* (single-fault
/// assumption): a fault is benign iff the design with only that fault
/// present still verifies clean. Useful for locating which defects actually
/// hurt a mapping before attempting repair.
///
/// # Errors
///
/// Propagates dimension-mismatch and verification errors.
pub fn classify_faults(
    xbar: &Crossbar,
    reference: &Network,
    map: &DefectMap,
    samples: usize,
) -> Result<Vec<ClassifiedFault>> {
    map.faults()
        .map(|fault| {
            let mut single = DefectMap::new(map.rows(), map.cols());
            single.add(fault).expect("fault was in range in `map`");
            Ok(ClassifiedFault {
                fault,
                impact: classify_map(xbar, reference, &single, samples)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::{GateKind, Network};

    /// The Fig. 2 design for f = (a ∧ b) ∨ c with its reference network.
    fn fig2_pair() -> (Crossbar, Network) {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);
        let mut x = Crossbar::new(3, 3, 3);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set(
            0,
            2,
            DeviceAssignment::Literal {
                input: 2,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 2).unwrap();
        (x, n)
    }

    #[test]
    fn empty_map_changes_nothing() {
        let (x, n) = fig2_pair();
        let map = DefectMap::new(3, 3);
        let faulty = apply_defects(&x, &map).unwrap();
        assert_eq!(classify_map(&x, &n, &map, 64).unwrap(), FaultImpact::Benign);
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(faulty.evaluate(&ins).unwrap(), x.evaluate(&ins).unwrap());
        }
    }

    #[test]
    fn stuck_off_on_a_literal_is_functional() {
        let (x, n) = fig2_pair();
        let mut map = DefectMap::new(3, 3);
        map.add(Fault::StuckOff { row: 0, col: 2 }).unwrap();
        assert_eq!(
            classify_map(&x, &n, &map, 64).unwrap(),
            FaultImpact::Functional
        );
    }

    #[test]
    fn stuck_on_on_a_bridge_is_benign() {
        let (x, n) = fig2_pair();
        // (1,0) is a VH bridge (always on) — sticking it on changes nothing.
        let mut map = DefectMap::new(3, 3);
        map.add(Fault::StuckOn { row: 1, col: 0 }).unwrap();
        assert_eq!(classify_map(&x, &n, &map, 64).unwrap(), FaultImpact::Benign);
    }

    #[test]
    fn open_wordline_kills_the_design() {
        let (x, n) = fig2_pair();
        let mut map = DefectMap::new(3, 3);
        map.add(Fault::OpenWordline { row: 0 }).unwrap();
        assert_eq!(
            classify_map(&x, &n, &map, 64).unwrap(),
            FaultImpact::Functional
        );
        // The severed input row conducts nothing.
        let faulty = apply_defects(&x, &map).unwrap();
        for bits in 0u32..8 {
            let ins: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(faulty.evaluate(&ins).unwrap(), vec![false]);
        }
    }

    #[test]
    fn open_line_dominates_stuck_on() {
        let mut map = DefectMap::new(3, 3);
        map.add(Fault::StuckOn { row: 1, col: 1 }).unwrap();
        map.add(Fault::OpenWordline { row: 1 }).unwrap();
        assert_eq!(map.cell_state(1, 1), CellState::ForcedOff);
        let (x, _) = fig2_pair();
        let faulty = apply_defects(&x, &map).unwrap();
        assert_eq!(faulty.get(1, 1).unwrap(), DeviceAssignment::Off);
    }

    #[test]
    fn classify_individual_faults() {
        let (x, n) = fig2_pair();
        let mut map = DefectMap::new(3, 3);
        map.add(Fault::StuckOn { row: 1, col: 0 }).unwrap(); // benign (bridge)
        map.add(Fault::StuckOff { row: 0, col: 0 }).unwrap(); // kills literal b
        let classified = classify_faults(&x, &n, &map, 64).unwrap();
        assert_eq!(classified.len(), 2);
        let impact_of = |f: Fault| classified.iter().find(|c| c.fault == f).unwrap().impact;
        assert_eq!(
            impact_of(Fault::StuckOn { row: 1, col: 0 }),
            FaultImpact::Benign
        );
        assert_eq!(
            impact_of(Fault::StuckOff { row: 0, col: 0 }),
            FaultImpact::Functional
        );
    }

    #[test]
    fn injection_is_deterministic_and_rate_sensitive() {
        let rates = DefectRates::uniform(0.05);
        let a = inject(40, 40, &rates, 123);
        let b = inject(40, 40, &rates, 123);
        assert_eq!(a, b, "same seed, same map");
        let c = inject(40, 40, &rates, 124);
        assert_ne!(a, c, "different seed, different map");
        // Density roughly matches the requested rate: 1600 cells at 5%.
        let junctions = a
            .faults()
            .filter(|f| matches!(f, Fault::StuckOff { .. } | Fault::StuckOn { .. }))
            .count();
        assert!((20..=140).contains(&junctions), "got {junctions}");
        let zero = inject(40, 40, &DefectRates::uniform(0.0), 123);
        assert!(zero.is_empty());
    }

    #[test]
    fn map_bounds_are_checked() {
        let mut map = DefectMap::new(2, 2);
        assert!(matches!(
            map.add(Fault::StuckOff { row: 2, col: 0 }),
            Err(XbarError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            map.add(Fault::OpenBitline { col: 9 }),
            Err(XbarError::ColOutOfRange { .. })
        ));
        assert!(map.is_empty());
    }

    #[test]
    fn apply_requires_matching_dims() {
        let (x, _) = fig2_pair();
        let map = DefectMap::new(5, 5);
        assert!(matches!(
            apply_defects(&x, &map),
            Err(XbarError::Placement { .. })
        ));
    }

    #[test]
    fn text_format_round_trips() {
        let mut map = DefectMap::new(4, 5);
        map.add(Fault::StuckOff { row: 1, col: 2 }).unwrap();
        map.add(Fault::StuckOn { row: 0, col: 4 }).unwrap();
        map.add(Fault::OpenWordline { row: 3 }).unwrap();
        map.add(Fault::OpenBitline { col: 0 }).unwrap();
        let text = map.to_string();
        let parsed = DefectMap::parse(&text).unwrap();
        assert_eq!(parsed, map);
    }

    #[test]
    fn parse_reports_errors_with_line_numbers() {
        assert!(DefectMap::parse("").is_err());
        let err = DefectMap::parse("stuck-off 0 0\n").unwrap_err();
        assert_eq!(err.line, 1, "header must come first: {err}");
        let err = DefectMap::parse("dims 2 2\nwat 1 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = DefectMap::parse("dims 2 2\nstuck-off 5 0\n").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        let err = DefectMap::parse("dims 2 2\ndims 3 3\n").unwrap_err();
        assert_eq!(err.line, 2);
        // Comments and blanks are fine.
        let map = DefectMap::parse("# hi\n\ndims 2 2\nstuck-on 1 1 # ok\n").unwrap();
        assert_eq!(map.len(), 1);
    }
}

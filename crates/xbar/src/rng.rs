//! Small deterministic random sources shared by the stochastic analyses
//! (fault injection, device-variation Monte Carlo, assignment sampling).
//! Everything here is explicitly seeded so every campaign is reproducible
//! across runs and CI — no global or OS entropy is ever consulted.

/// Deterministic xorshift64 generator.
///
/// The same generator the verification sampler has always used, promoted to
/// a shared type so fault injection and variation analysis draw from one
/// audited implementation.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from an explicit seed. A zero seed is mapped to
    /// a fixed non-zero constant (xorshift has a fixpoint at 0).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; returns 0 when `bound` is 0.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal sample (Box–Muller on two uniform draws).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-12);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = XorShift64::new(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(3);
        assert_eq!(r.below(0), 0);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
        }
    }
}

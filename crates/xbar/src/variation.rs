//! Device-variation analysis: Monte Carlo sampling of memristor resistances
//! around their nominal on/off values, reporting how the sensing margin
//! degrades — the robustness study a hardware evaluation of flow-based
//! designs needs on top of the nominal-SPICE validation.

use crate::circuit::ElectricalModel;
use crate::{Crossbar, Result};

/// Log-normal-style device variation: each device's resistance is its
/// nominal value scaled by `exp(σ·z)` with `z` a standard normal sample.
#[derive(Debug, Clone, Copy)]
pub struct VariationModel {
    /// The nominal electrical model.
    pub nominal: ElectricalModel,
    /// Log-domain sigma of the on-state resistance.
    pub sigma_on: f64,
    /// Log-domain sigma of the off-state resistance.
    pub sigma_off: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            nominal: ElectricalModel::default(),
            sigma_on: 0.1,
            sigma_off: 0.25,
        }
    }
}

/// Margin statistics over a Monte Carlo run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginStats {
    /// Trials evaluated.
    pub trials: usize,
    /// Lowest logic-1 output voltage across all trials.
    pub worst_on: f64,
    /// Highest logic-0 output voltage across all trials.
    pub worst_off: f64,
    /// Trials in which the on/off voltages ceased to be separable.
    pub failures: usize,
}

impl MarginStats {
    /// Fraction of trials with an intact sensing margin.
    pub fn yield_fraction(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            1.0 - self.failures as f64 / self.trials as f64
        }
    }
}

/// Runs `trials` Monte Carlo evaluations of the crossbar under the given
/// input assignments (each trial perturbs every device), classifying each
/// output voltage against the reference values in `expected` (parallel to
/// `assignments`), and returns the worst-case margin statistics.
///
/// Sampling is driven entirely by the explicit `seed` (through the shared
/// [`crate::rng::XorShift64`] generator), so the same seed reproduces the
/// same margin statistics on every run and platform — CI can assert on
/// them.
///
/// # Errors
///
/// Propagates crossbar evaluation errors.
///
/// # Panics
///
/// Panics if `expected.len() != assignments.len()`.
pub fn monte_carlo_margin(
    xbar: &Crossbar,
    assignments: &[Vec<bool>],
    expected: &[Vec<bool>],
    model: &VariationModel,
    trials: usize,
    seed: u64,
) -> Result<MarginStats> {
    assert_eq!(
        assignments.len(),
        expected.len(),
        "reference length mismatch"
    );
    let mut rng = crate::rng::XorShift64::new(seed);
    let mut stats = MarginStats {
        trials,
        worst_on: f64::INFINITY,
        worst_off: f64::NEG_INFINITY,
        failures: 0,
    };
    for _ in 0..trials {
        // Perturbed electrical model for this trial. A full per-device
        // perturbation would need per-junction resistances; the dominant
        // systematic effect — the on/off band moving together — is captured
        // by perturbing the two band levels, while independent per-device
        // noise averages out along multi-device paths.
        let trial_model = ElectricalModel {
            r_on: model.nominal.r_on * (model.sigma_on * rng.normal()).exp(),
            r_off: model.nominal.r_off * (model.sigma_off * rng.normal()).exp(),
            ..model.nominal
        };
        let mut min_on = f64::INFINITY;
        let mut max_off = f64::NEG_INFINITY;
        for (assignment, want) in assignments.iter().zip(expected) {
            let volts = trial_model.output_voltages(xbar, assignment)?;
            for (v, w) in volts.iter().zip(want) {
                if *w {
                    min_on = min_on.min(*v);
                } else {
                    max_off = max_off.max(*v);
                }
            }
        }
        if min_on.is_finite() {
            stats.worst_on = stats.worst_on.min(min_on);
        }
        if max_off.is_finite() {
            stats.worst_off = stats.worst_off.max(max_off);
        }
        if min_on.is_finite() && max_off.is_finite() && min_on <= max_off {
            stats.failures += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceAssignment;

    fn fig2() -> Crossbar {
        let mut x = Crossbar::new(3, 3, 3);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set(
            0,
            2,
            DeviceAssignment::Literal {
                input: 2,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 2).unwrap();
        x
    }

    fn truth_rows() -> (Vec<Vec<bool>>, Vec<Vec<bool>>) {
        let mut assignments = Vec::new();
        let mut expected = Vec::new();
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assignments.push(vec![a, b, c]);
            expected.push(vec![(a && b) || c]);
        }
        (assignments, expected)
    }

    #[test]
    fn healthy_devices_give_full_yield() {
        let x = fig2();
        let (assignments, expected) = truth_rows();
        let stats = monte_carlo_margin(
            &x,
            &assignments,
            &expected,
            &VariationModel::default(),
            50,
            42,
        )
        .unwrap();
        assert_eq!(stats.failures, 0, "worst margin {stats:?}");
        assert!(stats.worst_on > stats.worst_off);
        assert!((stats.yield_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_ratio_fails() {
        let x = fig2();
        let (assignments, expected) = truth_rows();
        // An on/off ratio of ~1 cannot be sensed.
        let broken = VariationModel {
            nominal: ElectricalModel {
                r_off: 1.5e3,
                ..ElectricalModel::default()
            },
            sigma_on: 0.5,
            sigma_off: 0.5,
        };
        let stats = monte_carlo_margin(&x, &assignments, &expected, &broken, 50, 42).unwrap();
        assert!(stats.failures > 0);
        assert!(stats.yield_fraction() < 1.0);
    }

    #[test]
    fn determinism() {
        let x = fig2();
        let (assignments, expected) = truth_rows();
        let m = VariationModel::default();
        let a = monte_carlo_margin(&x, &assignments, &expected, &m, 20, 7).unwrap();
        let b = monte_carlo_margin(&x, &assignments, &expected, &m, 20, 7).unwrap();
        assert_eq!(a, b);
    }
}

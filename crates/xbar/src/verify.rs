//! Functional and electrical verification of crossbar designs against a
//! reference gate-level network — the role SPICE simulation plays in the
//! paper's evaluation ("we have verified that all the crossbar designs are
//! valid").

use flowc_budget::Budget;
use flowc_logic::Network;

use crate::circuit::ElectricalModel;
use crate::{Crossbar, Result, XbarError};

/// Outcome of a verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Assignments checked.
    pub checked: usize,
    /// Assignments where the crossbar disagreed with the reference.
    pub mismatches: Vec<Vec<bool>>,
    /// Worst-case electrical margin observed, when electrical checking ran:
    /// `(lowest sensed voltage for a logic-1, highest for a logic-0)`.
    /// The design is electrically sensable iff the first exceeds the
    /// second — a threshold between them classifies every checked output.
    pub electrical_margin: Option<(f64, f64)>,
}

impl VerifyReport {
    /// Whether the design matched the reference on every checked
    /// assignment, and — when the electrical margin was measured — a
    /// sensing threshold separating logic 1 from logic 0 exists.
    pub fn is_valid(&self) -> bool {
        self.mismatches.is_empty() && self.margin_ok()
    }

    /// Whether the electrical on/off voltages are separable. Vacuously true
    /// for functional-only reports and when one class was never observed
    /// (the margin stays at its infinite initial value); false when either
    /// bound is NaN — a NaN margin means the nodal analysis produced
    /// garbage, which must not pass as "separable".
    pub fn margin_ok(&self) -> bool {
        match self.electrical_margin {
            Some((min_on, max_off)) => {
                if min_on.is_nan() || max_off.is_nan() {
                    false
                } else if min_on.is_finite() && max_off.is_finite() {
                    min_on > max_off
                } else {
                    // One class never observed: +inf on-floor or -inf
                    // off-ceiling cannot be violated.
                    true
                }
            }
            None => true,
        }
    }
}

fn assignments(num_inputs: usize, samples: usize) -> Vec<Vec<bool>> {
    if num_inputs <= 16 && (1usize << num_inputs) <= samples.max(1 << num_inputs.min(16)) {
        // Exhaustive when feasible.
        (0..1usize << num_inputs)
            .map(|v| (0..num_inputs).map(|i| v >> i & 1 == 1).collect())
            .collect()
    } else {
        let mut rng = crate::rng::XorShift64::new(0x005E_ED0F_F10C_u64 ^ (num_inputs as u64) << 32);
        (0..samples)
            .map(|_| (0..num_inputs).map(|_| rng.next_u64() & 1 == 1).collect())
            .collect()
    }
}

/// Checks the crossbar's flow-based evaluation against network simulation:
/// exhaustive for up to 16 inputs, otherwise `samples` random assignments.
///
/// # Errors
///
/// Returns [`XbarError::ReferenceInputMismatch`] when the network's input
/// count differs from the crossbar's, and propagates crossbar evaluation
/// errors (missing input port, arity).
pub fn verify_functional(
    xbar: &Crossbar,
    reference: &Network,
    samples: usize,
) -> Result<VerifyReport> {
    verify_functional_budgeted(xbar, reference, samples, &Budget::unlimited())
}

/// [`verify_functional`] under a cooperative [`Budget`]: the deadline and
/// cancellation token are checked between 64-assignment evaluation chunks,
/// so a long verification can be interrupted mid-sweep.
///
/// # Errors
///
/// In addition to [`verify_functional`]'s errors, returns
/// [`XbarError::Budget`] when the budget is exhausted before the sweep
/// finishes.
pub fn verify_functional_budgeted(
    xbar: &Crossbar,
    reference: &Network,
    samples: usize,
    budget: &Budget,
) -> Result<VerifyReport> {
    if reference.num_inputs() != xbar.num_inputs() {
        return Err(XbarError::ReferenceInputMismatch {
            reference: reference.num_inputs(),
            crossbar: xbar.num_inputs(),
        });
    }
    let mut mismatches = Vec::new();
    let assigns = assignments(xbar.num_inputs(), samples);
    let checked = assigns.len();
    let k = xbar.num_inputs();
    // Both sides support 64-wide evaluation; batch the assignments.
    'outer: for chunk in assigns.chunks(64) {
        budget.check()?;
        let mut words = vec![0u64; k];
        for (lane, a) in chunk.iter().enumerate() {
            for (i, w) in words.iter_mut().enumerate() {
                if a[i] {
                    *w |= 1 << lane;
                }
            }
        }
        let got = xbar.evaluate64(&words)?;
        let want = reference
            .simulate64(&words)
            .expect("input count checked above");
        let lane_mask = if chunk.len() == 64 {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        for (g, w) in got.iter().zip(&want) {
            let diff = (g ^ w) & lane_mask;
            if diff != 0 {
                for (lane, assignment) in chunk.iter().enumerate() {
                    if diff >> lane & 1 == 1 {
                        mismatches.push(assignment.clone());
                        if mismatches.len() >= 10 {
                            break 'outer; // enough evidence
                        }
                    }
                }
            }
        }
    }
    mismatches.sort_unstable();
    mismatches.dedup();
    Ok(VerifyReport {
        checked,
        mismatches,
        electrical_margin: None,
    })
}

/// Checks the crossbar *electrically*: nodal analysis under each sampled
/// assignment, requiring every logic-1 output voltage to exceed every
/// logic-0 output voltage (so one sensing threshold classifies the design
/// correctly on all checked assignments; the margin is reported). Intended
/// for small/medium designs — the dense solve is cubic in the wire count.
///
/// # Errors
///
/// Returns [`XbarError::ReferenceInputMismatch`] when the network's input
/// count differs from the crossbar's, and propagates crossbar evaluation
/// errors.
pub fn verify_electrical(
    xbar: &Crossbar,
    reference: &Network,
    model: &ElectricalModel,
    samples: usize,
) -> Result<VerifyReport> {
    if reference.num_inputs() != xbar.num_inputs() {
        return Err(XbarError::ReferenceInputMismatch {
            reference: reference.num_inputs(),
            crossbar: xbar.num_inputs(),
        });
    }
    let assigns = assignments(xbar.num_inputs(), samples);
    let checked = assigns.len();
    let mut min_on = f64::INFINITY;
    let mut max_off = f64::NEG_INFINITY;
    for a in assigns {
        let volts = model.output_voltages(xbar, &a)?;
        let want = reference.simulate(&a).expect("input count checked");
        for (v, w) in volts.iter().zip(&want) {
            if *w {
                min_on = min_on.min(*v);
            } else {
                max_off = max_off.max(*v);
            }
        }
    }
    Ok(VerifyReport {
        checked,
        mismatches: Vec::new(),
        electrical_margin: Some((min_on, max_off)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceAssignment;
    use flowc_logic::{GateKind, Network};

    fn fig2_pair() -> (Crossbar, Network) {
        let mut n = Network::new("fig2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        n.mark_output(f);

        let mut x = Crossbar::new(3, 3, 3);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 1,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set(
            1,
            1,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 1, DeviceAssignment::On).unwrap();
        x.set(
            0,
            2,
            DeviceAssignment::Literal {
                input: 2,
                negated: false,
            },
        )
        .unwrap();
        x.set(2, 2, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 2).unwrap();
        (x, n)
    }

    #[test]
    fn valid_design_passes_both_checks() {
        let (x, n) = fig2_pair();
        let r = verify_functional(&x, &n, 64).unwrap();
        assert!(r.is_valid());
        assert_eq!(r.checked, 8, "exhaustive for 3 inputs");
        let e = verify_electrical(&x, &n, &ElectricalModel::default(), 64).unwrap();
        assert!(e.is_valid());
        let (min_on, max_off) = e.electrical_margin.unwrap();
        assert!(min_on > max_off, "separation: {min_on} vs {max_off}");
    }

    #[test]
    fn broken_design_is_caught() {
        let (mut x, n) = fig2_pair();
        // Sabotage: make the c-edge always off.
        x.set(0, 2, DeviceAssignment::Off).unwrap();
        let r = verify_functional(&x, &n, 64).unwrap();
        assert!(!r.is_valid());
        // The failing assignments all have c=1, ¬(a∧b).
        for a in &r.mismatches {
            assert!(a[2] && !(a[0] && a[1]), "unexpected mismatch {a:?}");
        }
    }

    #[test]
    fn arity_mismatch_is_a_typed_error() {
        let (x, _) = fig2_pair();
        let mut n = Network::new("two-in");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::And, &[a, b], "f").unwrap();
        n.mark_output(f);
        let err = verify_functional(&x, &n, 64).unwrap_err();
        assert!(matches!(
            err,
            XbarError::ReferenceInputMismatch {
                reference: 2,
                crossbar: 3
            }
        ));
        let err = verify_electrical(&x, &n, &ElectricalModel::default(), 64).unwrap_err();
        assert!(matches!(err, XbarError::ReferenceInputMismatch { .. }));
    }

    #[test]
    fn cancelled_budget_interrupts_verification() {
        let (x, n) = fig2_pair();
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let err = verify_functional_budgeted(&x, &n, 64, &budget).unwrap_err();
        assert!(matches!(err, XbarError::Budget(_)));
        // An unlimited budget behaves like the plain entry point.
        let r = verify_functional_budgeted(&x, &n, 64, &Budget::unlimited()).unwrap();
        assert!(r.is_valid());
    }

    fn report_with_margin(margin: Option<(f64, f64)>) -> VerifyReport {
        VerifyReport {
            checked: 1,
            mismatches: Vec::new(),
            electrical_margin: margin,
        }
    }

    #[test]
    fn margin_ok_rejects_nan_bounds() {
        // NaN means the nodal analysis diverged; never certify it.
        assert!(!report_with_margin(Some((f64::NAN, 0.1))).margin_ok());
        assert!(!report_with_margin(Some((0.9, f64::NAN))).margin_ok());
        assert!(!report_with_margin(Some((f64::NAN, f64::NAN))).margin_ok());
        assert!(!report_with_margin(Some((f64::NAN, 0.1))).is_valid());
    }

    #[test]
    fn margin_ok_one_class_only_is_vacuous() {
        // Constant-1 design: no logic-0 output ever observed, max_off stays
        // at its -inf initial value. Separable by any threshold below min_on.
        assert!(report_with_margin(Some((0.7, f64::NEG_INFINITY))).margin_ok());
        // Constant-0 design: min_on stays +inf.
        assert!(report_with_margin(Some((f64::INFINITY, 0.2))).margin_ok());
        // No outputs observed at all (e.g. a portless sweep).
        assert!(report_with_margin(Some((f64::INFINITY, f64::NEG_INFINITY))).margin_ok());
    }

    #[test]
    fn margin_ok_finite_bounds_compare() {
        assert!(report_with_margin(Some((0.7, 0.2))).margin_ok());
        assert!(!report_with_margin(Some((0.2, 0.7))).margin_ok());
        assert!(
            !report_with_margin(Some((0.5, 0.5))).margin_ok(),
            "tie is not separable"
        );
        assert!(
            report_with_margin(None).margin_ok(),
            "functional-only is vacuous"
        );
    }

    #[test]
    fn zero_input_network_verifies() {
        // A constant function of no inputs: one (empty) assignment checked.
        let mut n = Network::new("const1");
        let o = n.add_const1("o");
        n.mark_output(o);
        let mut x = Crossbar::new(2, 1, 0);
        x.set(0, 0, DeviceAssignment::On).unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("o", 1).unwrap();
        let r = verify_functional(&x, &n, 16).unwrap();
        assert_eq!(r.checked, 1, "2^0 assignments");
        assert!(r.is_valid());
        let e = verify_electrical(&x, &n, &ElectricalModel::default(), 16).unwrap();
        assert!(e.is_valid());
        let (min_on, max_off) = e.electrical_margin.unwrap();
        assert!(min_on.is_finite());
        assert_eq!(max_off, f64::NEG_INFINITY, "no logic-0 outputs exist");
    }

    #[test]
    fn sampling_used_for_wide_inputs() {
        // 20 inputs: must sample, not enumerate.
        let mut n = Network::new("wide");
        let ins: Vec<_> = (0..20).map(|i| n.add_input(format!("x{i}"))).collect();
        let f = n.add_gate(GateKind::Or, &ins, "f").unwrap();
        n.mark_output(f);
        let mut x = Crossbar::new(2, 1, 20);
        x.set(
            0,
            0,
            DeviceAssignment::Literal {
                input: 0,
                negated: false,
            },
        )
        .unwrap();
        x.set(1, 0, DeviceAssignment::On).unwrap();
        x.set_input_row(0).unwrap();
        x.add_output("f", 1).unwrap();
        // Wrong design (only tests x0); sampling should catch it quickly.
        let r = verify_functional(&x, &n, 200).unwrap();
        assert_eq!(r.checked, 200);
        assert!(!r.is_valid());
    }
}

use std::collections::HashMap;

use flowc_budget::CancelHandle;

/// A reference to a BDD node inside a [`Manager`].
///
/// References are only meaningful for the manager that produced them; they
/// stay valid until the next [`Manager::gc`] call, which remaps the roots it
/// is given.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ref(pub(crate) u32);

impl Ref {
    /// The constant-false terminal.
    pub const ZERO: Ref = Ref(0);
    /// The constant-true terminal.
    pub const ONE: Ref = Ref(1);

    /// Raw arena index (stable between GCs; used by graph extraction).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

/// A BDD variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Raw variable index (creation order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel variable value for terminal nodes.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ref,
    hi: Ref,
}

/// A ROBDD/SBDD manager: node arena, per-(var,lo,hi) unique table, and an
/// ITE computed cache. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ref, Ref), Ref>,
    ite_cache: HashMap<(Ref, Ref, Ref), Ref>,
    var_names: Vec<String>,
    /// `var2level[v]` is the position of variable `v` in the order (0 = top).
    var2level: Vec<u32>,
    /// `level2var[l]` is the variable at position `l`.
    level2var: Vec<u32>,
    /// Arena ceiling: once `nodes.len()` reaches it, [`Manager::mk`] stops
    /// allocating, poisons the manager (`limit_hit`), and returns `ZERO`.
    node_limit: Option<usize>,
    limit_hit: bool,
    /// Cooperative cancellation token polled on every fresh allocation, so
    /// a cancel lands mid-`apply` (one `mk` granularity) instead of waiting
    /// for the per-gate budget checkpoint in the builder.
    cancel: Option<CancelHandle>,
    cancel_hit: bool,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager holding only the two terminals.
    pub fn new() -> Self {
        Manager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: Ref::ZERO,
                    hi: Ref::ZERO,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: Ref::ONE,
                    hi: Ref::ONE,
                },
            ],
            unique: HashMap::new(),
            ite_cache: HashMap::new(),
            var_names: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            node_limit: None,
            limit_hit: false,
            cancel: None,
            cancel_hit: false,
        }
    }

    /// Caps the arena at `limit` nodes (`None` removes the cap). Once the
    /// cap is reached, every new allocation is refused: [`Manager::mk`]
    /// returns `ZERO` instead of a fresh node and the manager is *poisoned*
    /// — [`Manager::limit_hit`] stays `true` and results computed after
    /// the hit are unreliable. Callers that care (e.g.
    /// [`crate::try_build_sbdd`]) must check `limit_hit` and discard the
    /// manager; the poisoned-but-total contract is what keeps every op
    /// panic-free and `Result`-free on the hot path.
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.node_limit = limit;
    }

    /// The configured arena ceiling.
    pub fn node_limit(&self) -> Option<usize> {
        self.node_limit
    }

    /// Whether an allocation has ever been refused because of the node
    /// limit. Once set, everything computed since the hit is suspect.
    pub fn limit_hit(&self) -> bool {
        self.limit_hit
    }

    /// Attaches a cancellation token polled on every fresh allocation
    /// (`None` detaches). Once the token is observed cancelled the manager
    /// is poisoned exactly like a node-limit hit — [`Manager::mk`] refuses
    /// allocations, [`Manager::cancel_hit`] stays `true`, and the partial
    /// forest must be discarded.
    pub fn set_cancel(&mut self, cancel: Option<CancelHandle>) {
        self.cancel = cancel;
    }

    /// Whether an allocation has ever been refused because the attached
    /// cancellation token fired. Once set, results are suspect.
    pub fn cancel_hit(&self) -> bool {
        self.cancel_hit
    }

    /// Declares a new variable at the bottom of the current order.
    pub fn new_var(&mut self, name: impl Into<String>) -> VarId {
        let v = self.var_names.len() as u32;
        self.var_names.push(name.into());
        self.var2level.push(v);
        self.level2var.push(v);
        VarId(v)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The name of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the variable does not belong to this manager.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.var_names[var.index()]
    }

    /// The variables in order (top of the BDD first).
    pub fn order(&self) -> Vec<VarId> {
        self.level2var.iter().map(|&v| VarId(v)).collect()
    }

    /// Total nodes in the arena, including both terminals and any garbage
    /// from dropped intermediate results (call [`Manager::gc`] first for a
    /// live count, or use [`Manager::size`] for a per-root count).
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    fn level(&self, r: Ref) -> u32 {
        let var = self.nodes[r.index()].var;
        if var == TERMINAL_VAR {
            u32::MAX
        } else {
            self.var2level[var as usize]
        }
    }

    /// The variable labelling an internal node.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal.
    pub fn node_var(&self, r: Ref) -> VarId {
        assert!(!r.is_terminal(), "terminals have no variable");
        VarId(self.nodes[r.index()].var)
    }

    /// The else-child (low edge) of an internal node.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal.
    pub fn node_lo(&self, r: Ref) -> Ref {
        assert!(!r.is_terminal(), "terminals have no children");
        self.nodes[r.index()].lo
    }

    /// The then-child (high edge) of an internal node.
    ///
    /// # Panics
    ///
    /// Panics when called on a terminal.
    pub fn node_hi(&self, r: Ref) -> Ref {
        assert!(!r.is_terminal(), "terminals have no children");
        self.nodes[r.index()].hi
    }

    /// Finds or creates the reduced node `(var, lo, hi)`.
    fn mk(&mut self, var: u32, lo: Ref, hi: Ref) -> Ref {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            self.level(lo) > self.var2level[var as usize]
                && self.level(hi) > self.var2level[var as usize],
            "children must be strictly below the node's level"
        );
        if let Some(&r) = self.unique.get(&(var, lo, hi)) {
            return r;
        }
        if self.cancel_hit || self.cancel.as_ref().is_some_and(CancelHandle::is_cancelled) {
            // Same poisoned-but-total contract as the node limit: refuse
            // the allocation so the in-flight apply drains within its
            // existing arena, and let the caller see the right error.
            self.cancel_hit = true;
            return Ref::ZERO;
        }
        if self
            .node_limit
            .is_some_and(|limit| self.nodes.len() >= limit)
        {
            // Refuse the allocation but stay total: the computation keeps
            // running (bounded by the existing arena) and the poison flag
            // tells budget-aware callers to discard the result.
            self.limit_hit = true;
            return Ref::ZERO;
        }
        let r = Ref(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), r);
        r
    }

    /// The constant-false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// The constant-true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The projection function of `var`.
    pub fn var(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::ZERO, Ref::ONE)
    }

    /// The negated projection function of `var`.
    pub fn nvar(&mut self, var: VarId) -> Ref {
        self.mk(var.0, Ref::ONE, Ref::ZERO)
    }

    /// Top-variable cofactors of `f` with respect to variable `v` (which must
    /// be at or above `f`'s top level): returns `(f|v=0, f|v=1)`.
    fn cofactors(&self, f: Ref, v: u32) -> (Ref, Ref) {
        let n = &self.nodes[f.index()];
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = (f ∧ g) ∨ (¬f ∧ h)` — the universal
    /// BDD combinator all other operations reduce to.
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal cases.
        if f == Ref::ONE {
            return g;
        }
        if f == Ref::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Ref::ONE && h == Ref::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return r;
        }
        let top_level = self.level(f).min(self.level(g)).min(self.level(h));
        let v = self.level2var[top_level as usize];
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::ONE, g)
    }

    /// Complement.
    pub fn not(&mut self, f: Ref) -> Ref {
        self.ite(f, Ref::ZERO, Ref::ONE)
    }

    /// Exclusive-or.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Exclusive-nor.
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// N-ary conjunction over an operand list (true when empty).
    pub fn and_many(&mut self, fs: &[Ref]) -> Ref {
        fs.iter().fold(Ref::ONE, |acc, &f| self.and(acc, f))
    }

    /// N-ary disjunction over an operand list (false when empty).
    pub fn or_many(&mut self, fs: &[Ref]) -> Ref {
        fs.iter().fold(Ref::ZERO, |acc, &f| self.or(acc, f))
    }

    /// Evaluates `f` under an assignment indexed by variable (creation
    /// order), not by level.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is shorter than the highest variable on the
    /// evaluated path.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = &self.nodes[cur.index()];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Ref::ONE
    }

    /// The set of nodes reachable from `roots` (terminals included when
    /// reachable), in a deterministic DFS order.
    pub fn reachable(&self, roots: &[Ref]) -> Vec<Ref> {
        let mut seen = vec![false; self.nodes.len()];
        let mut out = Vec::new();
        let mut stack: Vec<Ref> = roots.to_vec();
        while let Some(r) = stack.pop() {
            if seen[r.index()] {
                continue;
            }
            seen[r.index()] = true;
            out.push(r);
            if !r.is_terminal() {
                let n = &self.nodes[r.index()];
                stack.push(n.lo);
                stack.push(n.hi);
            }
        }
        out
    }

    /// Node count of the shared forest rooted at `roots` (terminals
    /// included), i.e. the SBDD size when `roots` are a circuit's outputs.
    pub fn size(&self, roots: &[Ref]) -> usize {
        self.reachable(roots).len()
    }

    /// Number of satisfying assignments of `f` over all declared variables.
    pub fn sat_count(&self, f: Ref) -> u128 {
        let nvars = self.num_vars() as u32;
        let mut memo: HashMap<Ref, u128> = HashMap::new();
        // count(r) = satisfying assignments over variables strictly below
        // level(r); scale at the end.
        fn go(m: &Manager, memo: &mut HashMap<Ref, u128>, r: Ref, nvars: u32) -> u128 {
            if r == Ref::ZERO {
                return 0;
            }
            if r == Ref::ONE {
                return 1;
            }
            if let Some(&c) = memo.get(&r) {
                return c;
            }
            let n = m.nodes[r.index()];
            let my_level = m.var2level[n.var as usize];
            let lo = go(m, memo, n.lo, nvars);
            let hi = go(m, memo, n.hi, nvars);
            let lo_gap = m.level(n.lo).min(nvars) - my_level - 1;
            let hi_gap = m.level(n.hi).min(nvars) - my_level - 1;
            let c = (lo << lo_gap) + (hi << hi_gap);
            memo.insert(r, c);
            c
        }
        let c = go(self, &mut memo, f, nvars);
        let top_gap = self.level(f).min(nvars);
        c << top_gap
    }

    /// Garbage-collects the arena, keeping only nodes reachable from
    /// `roots`, and rewrites each root in place to its new reference. All
    /// other outstanding [`Ref`]s become invalid.
    pub fn gc(&mut self, roots: &mut [Ref]) {
        let live = self.reachable(roots);
        let mut remap: Vec<Option<Ref>> = vec![None; self.nodes.len()];
        remap[0] = Some(Ref::ZERO);
        remap[1] = Some(Ref::ONE);
        let mut new_nodes = vec![self.nodes[0], self.nodes[1]];
        // Assign new slots in an order where children precede parents:
        // process live nodes sorted by descending level so children (deeper)
        // come first.
        let mut ordered: Vec<Ref> = live.iter().copied().filter(|r| !r.is_terminal()).collect();
        ordered.sort_by_key(|&r| std::cmp::Reverse(self.level(r)));
        for r in ordered {
            let n = self.nodes[r.index()];
            let lo = remap[n.lo.index()].expect("child remapped before parent");
            let hi = remap[n.hi.index()].expect("child remapped before parent");
            let nr = Ref(new_nodes.len() as u32);
            new_nodes.push(Node { var: n.var, lo, hi });
            remap[r.index()] = Some(nr);
        }
        self.nodes = new_nodes;
        self.unique = self
            .nodes
            .iter()
            .enumerate()
            .skip(2)
            .map(|(i, n)| ((n.var, n.lo, n.hi), Ref(i as u32)))
            .collect();
        self.ite_cache.clear();
        for r in roots.iter_mut() {
            *r = remap[r.index()].expect("root is live by definition");
        }
    }

    /// Clears the ITE computed cache (useful to bound memory between
    /// unrelated build phases).
    pub fn clear_cache(&mut self) {
        self.ite_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_vars() -> (Manager, Ref, Ref, Ref) {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (va, vb, vc) = (m.var(a), m.var(b), m.var(c));
        (m, va, vb, vc)
    }

    #[test]
    fn terminals_and_projection() {
        let (mut m, va, _, _) = three_vars();
        assert!(m.eval(m.one(), &[false, false, false]));
        assert!(!m.eval(m.zero(), &[false, false, false]));
        assert!(m.eval(va, &[true, false, false]));
        assert!(!m.eval(va, &[false, true, true]));
        let a = VarId(0);
        let nva = m.nvar(a);
        let also = m.not(va);
        assert_eq!(nva, also, "negated projection is canonical");
    }

    #[test]
    fn running_example_structure() {
        // f = (a ∧ b) ∨ c, the paper's Fig. 2 function.
        let (mut m, va, vb, vc) = three_vars();
        let ab = m.and(va, vb);
        let f = m.or(ab, vc);
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(m.eval(f, &[a, b, c]), (a && b) || c, "{bits:03b}");
        }
        // ROBDD: node(a) -> node(b) -> node(c), plus 2 terminals.
        assert_eq!(m.size(&[f]), 5);
        assert_eq!(m.sat_count(f), 5); // (a&b)|c has 5 of 8 minterms
    }

    #[test]
    fn reduction_no_redundant_tests() {
        let (mut m, va, vb, _) = three_vars();
        // a XOR a = 0, a OR a = a.
        assert_eq!(m.xor(va, va), Ref::ZERO);
        assert_eq!(m.or(va, va), va);
        assert_eq!(m.and(va, va), va);
        // (a ∧ b) ∨ (a ∧ ¬b) = a.
        let nb = m.not(vb);
        let x = m.and(va, vb);
        let y = m.and(va, nb);
        assert_eq!(m.or(x, y), va);
    }

    #[test]
    fn canonicity_hash_consing() {
        let (mut m, va, vb, vc) = three_vars();
        let f1 = {
            let t = m.and(va, vb);
            m.or(t, vc)
        };
        let f2 = {
            // Build the same function differently: ¬(¬(a∧b) ∧ ¬c).
            let t = m.and(va, vb);
            let nt = m.not(t);
            let nc = m.not(vc);
            let u = m.and(nt, nc);
            m.not(u)
        };
        assert_eq!(f1, f2, "equal functions share one node");
    }

    #[test]
    fn xor_chain_counts() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8)
            .map(|i| {
                let v = m.new_var(format!("x{i}"));
                m.var(v)
            })
            .collect();
        let mut f = Ref::ZERO;
        for v in vars {
            f = m.xor(f, v);
        }
        // Parity of 8 vars: 2^7 satisfying assignments, 2 nodes per level.
        assert_eq!(m.sat_count(f), 128);
        assert_eq!(m.size(&[f]), 2 * 8 - 1 + 2);
    }

    #[test]
    fn sat_count_handles_skipped_levels() {
        let mut m = Manager::new();
        let _a = m.new_var("a");
        let b = m.new_var("b");
        let _c = m.new_var("c");
        let vb = m.var(b);
        // f = b over 3 declared vars: 4 satisfying assignments.
        assert_eq!(m.sat_count(vb), 4);
        assert_eq!(m.sat_count(Ref::ONE), 8);
        assert_eq!(m.sat_count(Ref::ZERO), 0);
    }

    #[test]
    fn ite_general() {
        let (mut m, va, vb, vc) = three_vars();
        let f = m.ite(va, vb, vc); // a ? b : c
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(m.eval(f, &[a, b, c]), if a { b } else { c });
        }
    }

    #[test]
    fn and_many_or_many() {
        let (mut m, va, vb, vc) = three_vars();
        let all = m.and_many(&[va, vb, vc]);
        assert_eq!(m.sat_count(all), 1);
        let any = m.or_many(&[va, vb, vc]);
        assert_eq!(m.sat_count(any), 7);
        assert_eq!(m.and_many(&[]), Ref::ONE);
        assert_eq!(m.or_many(&[]), Ref::ZERO);
    }

    #[test]
    fn gc_preserves_function_and_drops_garbage() {
        let (mut m, va, vb, vc) = three_vars();
        // Create garbage.
        for _ in 0..10 {
            let t = m.xor(va, vb);
            let _ = m.xor(t, vc);
        }
        let ab = m.and(va, vb);
        let f = m.or(ab, vc);
        let before = m.arena_size();
        let mut roots = [f];
        m.gc(&mut roots);
        let f = roots[0];
        assert!(m.arena_size() < before);
        assert_eq!(m.arena_size(), 5);
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            assert_eq!(m.eval(f, &[a, b, c]), (a && b) || c);
        }
        // The manager still works after GC (unique table consistent).
        let g = m.and(f, f);
        assert_eq!(g, f);
    }

    #[test]
    fn reachable_is_shared_across_roots() {
        let (mut m, va, vb, vc) = three_vars();
        let f = m.and(va, vb);
        let g = {
            let t = m.and(va, vb);
            m.or(t, vc)
        };
        let separate = m.size(&[f]) + m.size(&[g]);
        let shared = m.size(&[f, g]);
        assert!(shared < separate, "shared forest must deduplicate");
    }

    #[test]
    fn node_accessors_panic_on_terminals() {
        let m = Manager::new();
        let r = std::panic::catch_unwind(|| m.node_var(Ref::ONE));
        assert!(r.is_err());
    }
}

//! Reduced ordered binary decision diagrams (ROBDDs) and shared BDD forests
//! (SBDDs), built from scratch as the CUDD/ABC stand-in for the COMPACT
//! reproduction.
//!
//! A [`Manager`] owns a node arena with a per-level unique table and an ITE
//! computed cache. Multiple roots share structure, which is exactly the
//! *shared BDD* (SBDD) of the paper: building every output of a
//! multi-output circuit in one manager yields the SBDD, while building each
//! output in its own manager yields the "multiple ROBDDs" baseline.
//!
//! # Quick example
//!
//! ```
//! use flowc_bdd::Manager;
//!
//! let mut m = Manager::new();
//! let a = m.new_var("a");
//! let b = m.new_var("b");
//! let c = m.new_var("c");
//! let (va, vb, vc) = (m.var(a), m.var(b), m.var(c));
//! let ab = m.and(va, vb);
//! let f = m.or(ab, vc); // (a ∧ b) ∨ c — the paper's running example
//! assert!(m.eval(f, &[true, true, false]));
//! assert!(!m.eval(f, &[false, true, false]));
//! assert_eq!(m.size(&[f]), 5); // 3 internal nodes + 2 terminals
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod dot;
mod manager;
mod ops;
mod order;

pub use build::{build_robdds, build_sbdd, try_build_sbdd, NetworkBdds};
pub use dot::to_dot;
pub use manager::{Manager, Ref, VarId};
pub use order::{
    build_with_heuristic, dfs_fanin_order, natural_order, reorder, sift, OrderHeuristic, SiftResult,
};

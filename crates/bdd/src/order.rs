//! Static variable-ordering heuristics and reordering by rebuild.
//!
//! The paper consumes whatever order ABC/CUDD produce; here we provide the
//! standard structural heuristics so the benchmark BDDs stay compact, plus a
//! rebuild-based [`reorder`] used by the ordering ablation bench.

use flowc_logic::Network;

use crate::build::{build_sbdd, NetworkBdds};

/// Which static ordering heuristic to apply to a network's inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OrderHeuristic {
    /// Input creation order (the generators already interleave operands).
    Natural,
    /// Depth-first traversal from the outputs, recording inputs at first
    /// visit — the classic fanin/DFS heuristic.
    DfsFanin,
}

/// The identity order over a network's inputs.
pub fn natural_order(network: &Network) -> Vec<usize> {
    (0..network.num_inputs()).collect()
}

/// DFS-from-outputs ordering: walk each output cone depth-first and list
/// inputs in first-visit order. Inputs never reached by any output are
/// appended at the end in creation order.
pub fn dfs_fanin_order(network: &Network) -> Vec<usize> {
    let mut input_pos = vec![usize::MAX; network.num_nets()];
    for (i, &net) in network.inputs().iter().enumerate() {
        input_pos[net.index()] = i;
    }
    let mut visited = vec![false; network.num_nets()];
    let mut order: Vec<usize> = Vec::new();
    for &out in network.outputs() {
        let mut stack = vec![out];
        while let Some(net) = stack.pop() {
            if visited[net.index()] {
                continue;
            }
            visited[net.index()] = true;
            if network.is_input(net) {
                order.push(input_pos[net.index()]);
            } else if let Some(gate) = network.driver_gate(net) {
                // Push in reverse so the first fanin is visited first.
                for &inp in gate.inputs.iter().rev() {
                    stack.push(inp);
                }
            }
        }
    }
    for i in 0..network.num_inputs() {
        if !order.contains(&i) {
            order.push(i);
        }
    }
    order
}

/// Builds the SBDD of `network` under the given heuristic.
pub fn build_with_heuristic(network: &Network, heuristic: OrderHeuristic) -> NetworkBdds {
    match heuristic {
        OrderHeuristic::Natural => build_sbdd(network, None),
        OrderHeuristic::DfsFanin => {
            let order = dfs_fanin_order(network);
            build_sbdd(network, Some(&order))
        }
    }
}

/// Rebuilds the network's SBDD under a new input order and returns it.
/// This is reordering by reconstruction (the network is the function
/// source), which is exact and simple; it is not an in-place sifting.
pub fn reorder(network: &Network, order: &[usize]) -> NetworkBdds {
    build_sbdd(network, Some(order))
}

/// Outcome of a [`sift`] run.
#[derive(Debug)]
pub struct SiftResult {
    /// The forest under the improved order.
    pub bdds: NetworkBdds,
    /// The input order that produced it.
    pub order: Vec<usize>,
    /// Shared node count before sifting.
    pub initial_size: usize,
    /// Shared node count after sifting.
    pub final_size: usize,
}

/// Variable sifting by reconstruction: each variable in turn is tried at
/// every position of the order (most impactful variables first), keeping
/// the position that minimizes the shared node count, until a pass yields
/// no improvement or the time budget expires.
///
/// Classic sifting swaps adjacent levels in place; this implementation
/// re-derives the forest from the network for each candidate position,
/// which is slower per step but exact, simple, and safe. Intended for the
/// ordering ablation on small/medium circuits.
pub fn sift(network: &Network, budget: std::time::Duration) -> SiftResult {
    let deadline = std::time::Instant::now() + budget;
    let n = network.num_inputs();
    let mut order: Vec<usize> = (0..n).collect();
    let initial_size = build_sbdd(network, Some(&order)).shared_size();
    let mut best_size = initial_size;
    loop {
        let mut improved = false;
        // Sift variables one by one (in current-order sequence).
        for pos in 0..n {
            if std::time::Instant::now() >= deadline {
                let bdds = build_sbdd(network, Some(&order));
                return SiftResult {
                    final_size: bdds.shared_size(),
                    bdds,
                    order,
                    initial_size,
                };
            }
            let var = order[pos];
            let mut best_pos = pos;
            for candidate in 0..n {
                if candidate == pos {
                    continue;
                }
                let mut trial = order.clone();
                trial.remove(pos);
                trial.insert(candidate, var);
                let size = build_sbdd(network, Some(&trial)).shared_size();
                if size < best_size {
                    best_size = size;
                    best_pos = candidate;
                }
            }
            if best_pos != pos {
                order.remove(pos);
                order.insert(best_pos, var);
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    let bdds = build_sbdd(network, Some(&order));
    SiftResult {
        final_size: bdds.shared_size(),
        bdds,
        order,
        initial_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::bench_suite::blocks::{input_bus, ripple_adder};
    use flowc_logic::{GateKind, Network};

    fn separated_adder() -> Network {
        let mut n = Network::new("add");
        let a = input_bus(&mut n, "a", 8);
        let b = input_bus(&mut n, "b", 8);
        let cin = n.add_input("cin");
        let (sum, cout) = ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
        for s in sum {
            n.mark_output(s);
        }
        n.mark_output(cout);
        n
    }

    #[test]
    fn dfs_order_is_permutation() {
        let n = separated_adder();
        let order = dfs_fanin_order(&n);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n.num_inputs()).collect::<Vec<_>>());
    }

    #[test]
    fn dfs_beats_natural_on_separated_adder() {
        let n = separated_adder();
        let nat = build_with_heuristic(&n, OrderHeuristic::Natural);
        let dfs = build_with_heuristic(&n, OrderHeuristic::DfsFanin);
        assert!(
            dfs.shared_size() < nat.shared_size(),
            "DFS order should interleave the adder operands ({} vs {})",
            dfs.shared_size(),
            nat.shared_size()
        );
    }

    #[test]
    fn dfs_handles_unreachable_inputs() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let _dangling = n.add_input("unused");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::And, &[b, a], "f").unwrap();
        n.mark_output(f);
        let order = dfs_fanin_order(&n);
        assert_eq!(order.len(), 3);
        // b is the first fanin of the only gate.
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 0);
        assert_eq!(order[2], 1, "unused input appended last");
    }

    #[test]
    fn sifting_recovers_interleaved_adder_order() {
        // The separated a..a b..b order is exponentially bad for adders;
        // sifting must find something close to the interleaved optimum.
        let mut n = Network::new("add");
        let a = input_bus(&mut n, "a", 5);
        let b = input_bus(&mut n, "b", 5);
        let cin = n.add_input("cin");
        let (sum, cout) = ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
        for s in sum {
            n.mark_output(s);
        }
        n.mark_output(cout);
        let result = super::sift(&n, std::time::Duration::from_secs(30));
        assert!(result.final_size < result.initial_size, "{result:?}");
        // The interleaved reference order.
        let interleaved: Vec<usize> = (0..5).flat_map(|i| [i, i + 5]).chain([10]).collect();
        let reference = build_sbdd(&n, Some(&interleaved)).shared_size();
        assert!(
            result.final_size <= reference + reference / 4,
            "sifted {} vs interleaved {}",
            result.final_size,
            reference
        );
        // Function preserved.
        let mut x = 5u64;
        for _ in 0..32 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let vals: Vec<bool> = (0..11).map(|i| x >> (i + 7) & 1 == 1).collect();
            assert_eq!(result.bdds.eval(&vals), n.simulate(&vals).unwrap());
        }
    }

    #[test]
    fn sift_respects_budget() {
        let mut n = Network::new("t");
        let ins = input_bus(&mut n, "x", 8);
        let f = n.add_gate(GateKind::Xor, &ins, "f").unwrap();
        n.mark_output(f);
        let result = super::sift(&n, std::time::Duration::from_millis(0));
        // Zero budget: must still return a consistent result.
        assert_eq!(
            result.final_size,
            build_sbdd(&n, Some(&result.order)).shared_size()
        );
    }

    #[test]
    fn reorder_preserves_function() {
        let n = separated_adder();
        let order: Vec<usize> = (0..8).flat_map(|i| [i, i + 8]).chain([16]).collect();
        let re = reorder(&n, &order);
        let mut x = 7u64;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let vals: Vec<bool> = (0..17).map(|i| x >> (i + 3) & 1 == 1).collect();
            assert_eq!(re.eval(&vals), n.simulate(&vals).unwrap());
        }
    }
}

//! Building (shared) BDDs from gate-level networks.

use flowc_budget::{Budget, BudgetExceeded};
use flowc_logic::{GateKind, Network};

use crate::{Manager, Ref, VarId};

/// A network compiled to BDD form: the manager, one root per primary output,
/// and the variable handle for each primary input (in network input order).
#[derive(Debug)]
pub struct NetworkBdds {
    /// The manager holding the forest.
    pub manager: Manager,
    /// One root per primary output, in output order.
    pub roots: Vec<Ref>,
    /// The BDD variable of each primary input, in input order.
    pub vars: Vec<VarId>,
}

impl NetworkBdds {
    /// Shared node count of the forest (the SBDD size), terminals included.
    pub fn shared_size(&self) -> usize {
        self.manager.size(&self.roots)
    }

    /// Per-output ROBDD sizes (each counted with its own terminals), i.e.
    /// the sizes of the "multiple ROBDDs" the paper's baseline flow uses.
    pub fn per_output_sizes(&self) -> Vec<usize> {
        self.roots
            .iter()
            .map(|&r| self.manager.size(&[r]))
            .collect()
    }

    /// A stable structural fingerprint of the forest: FNV-1a over the
    /// variable order, every reachable node's `(var, lo, hi)` triple in
    /// reachability order, and the root list. Two forests built by the
    /// same deterministic construction hash identically, so the hash can
    /// serve as an artifact identity in caches (and lets tests assert two
    /// cache reads returned byte-identical BDDs without walking them).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01B3);
            }
        };
        mix(self.vars.len() as u64);
        for &v in &self.vars {
            mix(v.index() as u64);
        }
        for r in self.manager.reachable(&self.roots) {
            mix(r.index() as u64);
            if !r.is_terminal() {
                mix(self.manager.node_var(r).index() as u64);
                mix(self.manager.node_lo(r).index() as u64);
                mix(self.manager.node_hi(r).index() as u64);
            }
        }
        mix(self.roots.len() as u64);
        for &r in &self.roots {
            mix(r.index() as u64);
        }
        h
    }

    /// Evaluates every output under an input assignment (network input
    /// order), mirroring [`flowc_logic::Network::simulate`].
    pub fn eval(&self, assignment: &[bool]) -> Vec<bool> {
        // `assignment` is in network-input order; the manager indexes by
        // variable id (declaration order), which differs under a custom
        // variable order. Remap through `vars`.
        let mut by_var = vec![false; self.vars.len()];
        for (input_idx, &v) in self.vars.iter().enumerate() {
            by_var[v.index()] = assignment[input_idx];
        }
        self.roots
            .iter()
            .map(|&r| self.manager.eval(r, &by_var))
            .collect()
    }
}

/// Compiles a network into a single shared BDD forest (SBDD): every output
/// is built in one manager, so common subfunctions are shared. The variable
/// order is the given permutation of the network inputs, or input creation
/// order when `order` is `None`.
///
/// The manager is garbage-collected before returning, so its arena holds
/// exactly the live forest.
///
/// # Panics
///
/// Panics if `order` is provided and is not a permutation of
/// `0..num_inputs`.
pub fn build_sbdd(network: &Network, order: Option<&[usize]>) -> NetworkBdds {
    try_build_sbdd(network, order, &Budget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// [`build_sbdd`] under a [`Budget`]: the manager arena is capped at the
/// budget's BDD-node ceiling, and the deadline/cancellation token is
/// checked between gates. On exhaustion the partial forest is discarded
/// and a [`BudgetExceeded`] is returned — construction never runs away on
/// memory and can always be interrupted.
///
/// # Panics
///
/// Panics if `order` is provided and is not a permutation of
/// `0..num_inputs` (a caller bug, same contract as [`build_sbdd`]).
pub fn try_build_sbdd(
    network: &Network,
    order: Option<&[usize]>,
    budget: &Budget,
) -> Result<NetworkBdds, BudgetExceeded> {
    let n_inputs = network.num_inputs();
    let identity: Vec<usize>;
    let order = match order {
        Some(o) => {
            assert_eq!(o.len(), n_inputs, "order must cover every input");
            let mut seen = vec![false; n_inputs];
            for &i in o {
                assert!(i < n_inputs && !seen[i], "order must be a permutation");
                seen[i] = true;
            }
            o
        }
        None => {
            identity = (0..n_inputs).collect();
            &identity
        }
    };

    let mut manager = Manager::new();
    manager.set_node_limit(budget.max_bdd_nodes());
    manager.set_cancel(Some(budget.cancel_handle()));
    // Declare variables in the requested order; remember each input's var.
    let mut vars: Vec<Option<VarId>> = vec![None; n_inputs];
    for &input_idx in order {
        let name = network.net_name(network.inputs()[input_idx]).to_string();
        vars[input_idx] = Some(manager.new_var(name));
    }
    let vars: Vec<VarId> = vars
        .into_iter()
        .map(|v| v.expect("permutation covers all"))
        .collect();

    // Evaluate gates in topological (creation) order.
    let mut node_fn: Vec<Ref> = vec![Ref::ZERO; network.num_nets()];
    for (idx, &input) in network.inputs().iter().enumerate() {
        node_fn[input.index()] = manager.var(vars[idx]);
    }
    let mut operands: Vec<Ref> = Vec::new();
    for gate in network.gates() {
        // Cooperative checkpoint: deadline/cancellation between gates, and
        // the arena ceiling after every apply (growth *within* an apply is
        // already bounded — `mk` refuses allocations past the cap or once
        // the cancel token fires, and poisons the manager).
        budget.check()?;
        operands.clear();
        operands.extend(gate.inputs.iter().map(|i| node_fn[i.index()]));
        let f = apply_gate(&mut manager, gate.kind, &operands);
        // Budget before poison flags: when the cancel poll (or the clock)
        // aborted this apply from inside, report `Cancelled`/`Deadline`,
        // not a node-ceiling violation.
        budget.check()?;
        if manager.limit_hit() {
            return Err(BudgetExceeded::BddNodes {
                limit: budget.max_bdd_nodes().unwrap_or(0),
            });
        }
        node_fn[gate.output.index()] = f;
    }
    budget.check()?;
    let mut roots: Vec<Ref> = network
        .outputs()
        .iter()
        .map(|o| node_fn[o.index()])
        .collect();
    manager.gc(&mut roots);
    Ok(NetworkBdds {
        manager,
        roots,
        vars,
    })
}

/// Compiles each output of the network into its *own* manager — the
/// "multiple ROBDDs" representation the paper's prior-art flow uses.
/// Returns one single-root [`NetworkBdds`] per output.
pub fn build_robdds(network: &Network, order: Option<&[usize]>) -> Vec<NetworkBdds> {
    // Build once shared (cheap), then transfer each root into a fresh
    // manager via cofactor recursion to obtain truly separate ROBDDs.
    let shared = build_sbdd(network, order);
    shared
        .roots
        .iter()
        .map(|&root| {
            let mut m = Manager::new();
            let vars: Vec<VarId> = shared
                .manager
                .order()
                .iter()
                .map(|&v| m.new_var(shared.manager.var_name(v)))
                .collect();
            // Transfer: same order, so a direct structural copy is valid.
            let mut memo: std::collections::HashMap<Ref, Ref> = std::collections::HashMap::new();
            memo.insert(Ref::ZERO, Ref::ZERO);
            memo.insert(Ref::ONE, Ref::ONE);
            let new_root = copy_into(&shared.manager, &mut m, root, &mut memo);
            // vars in `m` are declared in *order* positions; reconstruct the
            // input-order mapping.
            let mut input_vars = vec![vars[0]; shared.vars.len()];
            for (pos, &v) in shared.manager.order().iter().enumerate() {
                // The var at order position `pos` corresponds to the same
                // input index as in the shared build.
                let input_idx = shared
                    .vars
                    .iter()
                    .position(|&sv| sv == v)
                    .expect("var belongs to an input");
                input_vars[input_idx] = vars[pos];
            }
            NetworkBdds {
                manager: m,
                roots: vec![new_root],
                vars: input_vars,
            }
        })
        .collect()
}

/// Structurally copies `root` from `src` into `dst` (same variable order).
fn copy_into(
    src: &Manager,
    dst: &mut Manager,
    root: Ref,
    memo: &mut std::collections::HashMap<Ref, Ref>,
) -> Ref {
    if let Some(&r) = memo.get(&root) {
        return r;
    }
    let var = src.node_var(root);
    let lo = copy_into(src, dst, src.node_lo(root), memo);
    let hi = copy_into(src, dst, src.node_hi(root), memo);
    // Same order in dst: positions align because vars were declared in
    // src's order. Build via ite on the projection to stay canonical.
    let v = dst.var(crate::VarId(src_var_position(src, var) as u32));
    let r = dst.ite(v, hi, lo);
    memo.insert(root, r);
    r
}

fn src_var_position(src: &Manager, var: VarId) -> usize {
    src.order()
        .iter()
        .position(|&v| v == var)
        .expect("var is declared")
}

fn apply_gate(m: &mut Manager, kind: GateKind, ops: &[Ref]) -> Ref {
    match kind {
        GateKind::Const0 => m.zero(),
        GateKind::Const1 => m.one(),
        GateKind::Buf => ops[0],
        GateKind::Not => m.not(ops[0]),
        GateKind::And => m.and_many(ops),
        GateKind::Or => m.or_many(ops),
        GateKind::Nand => {
            let t = m.and_many(ops);
            m.not(t)
        }
        GateKind::Nor => {
            let t = m.or_many(ops);
            m.not(t)
        }
        GateKind::Xor => ops.iter().fold(Ref::ZERO, |acc, &f| m.xor(acc, f)),
        GateKind::Xnor => {
            let t = ops.iter().fold(Ref::ZERO, |acc, &f| m.xor(acc, f));
            m.not(t)
        }
        GateKind::Mux => m.ite(ops[0], ops[1], ops[2]),
        // `GateKind` is non_exhaustive; new kinds must be handled here.
        other => unimplemented!("BDD lowering for gate kind {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowc_logic::bench_suite;
    use flowc_logic::{GateKind, Network};

    fn check_equivalent(network: &Network, bdds: &NetworkBdds, samples: usize) {
        let n = network.num_inputs();
        let mut x = 0x9E3779B97F4A7C15u64 ^ (n as u64);
        for _ in 0..samples {
            let vals: Vec<bool> = (0..n)
                .map(|i| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x >> (i % 64)) & 1 == 1
                })
                .collect();
            assert_eq!(
                bdds.eval(&vals),
                network.simulate(&vals).unwrap(),
                "mismatch on {vals:?}"
            );
        }
    }

    #[test]
    fn sbdd_matches_simulation_small() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
        let g = n.add_gate(GateKind::Xor, &[a, c], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g);
        let bdds = build_sbdd(&n, None);
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(bdds.eval(&vals), n.simulate(&vals).unwrap());
        }
        assert!(bdds.shared_size() >= 5);
    }

    #[test]
    fn every_benchmark_sbdd_equivalent_on_samples() {
        for b in bench_suite::all() {
            // Skip the two largest to keep test time sane; covered in
            // integration tests.
            if matches!(b.name, "arbiter") {
                continue;
            }
            let n = b.network().unwrap();
            let bdds = build_sbdd(&n, None);
            check_equivalent(&n, &bdds, 50);
        }
    }

    #[test]
    fn custom_order_changes_size_but_not_function() {
        // Adder with separated (bad) vs interleaved (good) orders.
        let mut n = Network::new("add");
        let a: Vec<_> = (0..6).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..6).map(|i| n.add_input(format!("b{i}"))).collect();
        let cin = n.add_input("cin");
        let (sum, cout) =
            flowc_logic::bench_suite::blocks::ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
        for s in sum {
            n.mark_output(s);
        }
        n.mark_output(cout);

        let natural = build_sbdd(&n, None); // a0..a5 b0..b5 cin — bad order
        let interleave: Vec<usize> = (0..6).flat_map(|i| [i, i + 6]).chain([12]).collect();
        let good = build_sbdd(&n, Some(&interleave));
        check_equivalent(&n, &natural, 64);
        check_equivalent(&n, &good, 64);
        assert!(
            good.shared_size() < natural.shared_size(),
            "interleaved order must shrink the adder BDD ({} vs {})",
            good.shared_size(),
            natural.shared_size()
        );
    }

    #[test]
    fn per_output_vs_shared_sizes() {
        let b = bench_suite::by_name("dec").unwrap();
        let n = b.network().unwrap();
        let bdds = build_sbdd(&n, None);
        let separate: usize = bdds.per_output_sizes().iter().sum();
        assert!(bdds.shared_size() < separate);
    }

    #[test]
    fn robdds_are_independent_and_equivalent() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let f = n.add_gate(GateKind::Xor, &[a, b], "f").unwrap();
        let g = n.add_gate(GateKind::And, &[a, b], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g);
        let singles = build_robdds(&n, None);
        assert_eq!(singles.len(), 2);
        for bits in 0u32..4 {
            let vals: Vec<bool> = (0..2).map(|i| bits >> i & 1 == 1).collect();
            let expect = n.simulate(&vals).unwrap();
            assert_eq!(singles[0].eval(&vals), vec![expect[0]]);
            assert_eq!(singles[1].eval(&vals), vec![expect[1]]);
        }
    }

    #[test]
    fn cancellation_aborts_mid_apply_promptly() {
        // A 24-bit adder in the separated (worst-case) order: the final
        // carry chain applies are exponential, so an uncancelled build
        // runs for a long time. Cancelling shortly after the start must
        // abort from *inside* the in-flight apply — `mk` polls the token
        // on every fresh allocation — not merely at the next between-gate
        // checkpoint. The node ceiling is a memory backstop: if the cancel
        // poll ever regresses, the test fails on the error kind instead of
        // exhausting RAM. The 2s ceiling is a wide CI-proof margin.
        let mut n = Network::new("add");
        let a: Vec<_> = (0..24).map(|i| n.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..24).map(|i| n.add_input(format!("b{i}"))).collect();
        let cin = n.add_input("cin");
        let (sum, cout) =
            flowc_logic::bench_suite::blocks::ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
        for s in sum {
            n.mark_output(s);
        }
        n.mark_output(cout);

        let budget = Budget::unlimited().with_max_bdd_nodes(50_000_000);
        let handle = budget.cancel_handle();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            handle.cancel();
        });
        let start = std::time::Instant::now();
        let result = try_build_sbdd(&n, None, &budget);
        let elapsed = start.elapsed();
        canceller.join().unwrap();
        match result {
            Err(BudgetExceeded::Cancelled) => {}
            Err(other) => panic!("expected Cancelled, got {other:?}"),
            Ok(_) => panic!("expected Cancelled, got a completed build"),
        }
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "cancelled build took {elapsed:?}"
        );
    }

    #[test]
    fn bad_order_panics() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let _ = n.add_input("b");
        n.mark_output(a);
        assert!(std::panic::catch_unwind(|| build_sbdd(&n, Some(&[0, 0]))).is_err());
        assert!(std::panic::catch_unwind(|| build_sbdd(&n, Some(&[0]))).is_err());
    }
}

//! Graphviz export for debugging and documentation figures.

use std::fmt::Write as _;

use crate::{Manager, Ref};

/// Renders the forest rooted at `roots` as Graphviz `dot` text. Solid edges
/// are then-edges (variable true), dashed edges are else-edges; terminals
/// are boxes. Root `i` is labelled with `root_names[i]` when provided.
pub fn to_dot(manager: &Manager, roots: &[Ref], root_names: Option<&[String]>) -> String {
    let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
    let reachable = manager.reachable(roots);
    for &r in &reachable {
        if r == Ref::ZERO {
            let _ = writeln!(out, "  n0 [shape=box,label=\"0\"];");
        } else if r == Ref::ONE {
            let _ = writeln!(out, "  n1 [shape=box,label=\"1\"];");
        } else {
            let var = manager.node_var(r);
            let _ = writeln!(
                out,
                "  n{} [shape=circle,label=\"{}\"];",
                r.index(),
                manager.var_name(var)
            );
        }
    }
    for &r in &reachable {
        if r.is_terminal() {
            continue;
        }
        let _ = writeln!(out, "  n{} -> n{};", r.index(), manager.node_hi(r).index());
        let _ = writeln!(
            out,
            "  n{} -> n{} [style=dashed];",
            r.index(),
            manager.node_lo(r).index()
        );
    }
    for (i, &r) in roots.iter().enumerate() {
        let label = root_names
            .and_then(|n| n.get(i).cloned())
            .unwrap_or_else(|| format!("f{i}"));
        let _ = writeln!(out, "  r{i} [shape=plaintext,label=\"{label}\"];");
        let _ = writeln!(out, "  r{i} -> n{};", r.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    #[test]
    fn dot_contains_nodes_edges_and_roots() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let (va, vb) = (m.var(a), m.var(b));
        let f = m.and(va, vb);
        let dot = to_dot(&m, &[f], Some(&["f".to_string()]));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("label=\"b\""));
        assert!(dot.contains("label=\"1\""));
        assert!(dot.contains("label=\"0\""));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("label=\"f\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_default_root_names() {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let va = m.var(a);
        let dot = to_dot(&m, &[va], None);
        assert!(dot.contains("label=\"f0\""));
    }
}

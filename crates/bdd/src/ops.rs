//! Additional BDD operations beyond the ITE core: cofactors, restriction,
//! quantification, support computation, and satisfying-cube enumeration.

use std::collections::HashMap;

use crate::{Manager, Ref, VarId};

impl Manager {
    /// The cofactor `f|var=value`.
    pub fn cofactor_by(&mut self, f: Ref, var: VarId, value: bool) -> Ref {
        self.restrict(f, &[(var, value)])
    }

    /// Restricts `f` by a partial assignment (simultaneous cofactor).
    ///
    /// # Panics
    ///
    /// Panics if a variable does not belong to this manager.
    pub fn restrict(&mut self, f: Ref, assignment: &[(VarId, bool)]) -> Ref {
        let mut values = vec![None; self.num_vars()];
        for &(v, b) in assignment {
            values[v.index()] = Some(b);
        }
        let mut memo = HashMap::new();
        self.restrict_rec(f, &values, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: Ref,
        values: &[Option<bool>],
        memo: &mut HashMap<Ref, Ref>,
    ) -> Ref {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let var = self.node_var(f);
        let (lo, hi) = (self.node_lo(f), self.node_hi(f));
        let r = match values[var.index()] {
            Some(true) => self.restrict_rec(hi, values, memo),
            Some(false) => self.restrict_rec(lo, values, memo),
            None => {
                let nlo = self.restrict_rec(lo, values, memo);
                let nhi = self.restrict_rec(hi, values, memo);
                let v = self.var(var);
                self.ite(v, nhi, nlo)
            }
        };
        memo.insert(f, r);
        r
    }

    /// Existential quantification `∃var. f = f|var=0 ∨ f|var=1`.
    pub fn exists(&mut self, f: Ref, var: VarId) -> Ref {
        let f0 = self.cofactor_by(f, var, false);
        let f1 = self.cofactor_by(f, var, true);
        self.or(f0, f1)
    }

    /// Universal quantification `∀var. f = f|var=0 ∧ f|var=1`.
    pub fn forall(&mut self, f: Ref, var: VarId) -> Ref {
        let f0 = self.cofactor_by(f, var, false);
        let f1 = self.cofactor_by(f, var, true);
        self.and(f0, f1)
    }

    /// The support of `f`: the variables it structurally depends on, in
    /// variable-index order.
    pub fn support(&self, f: Ref) -> Vec<VarId> {
        let mut present = vec![false; self.num_vars()];
        for r in self.reachable(&[f]) {
            if !r.is_terminal() {
                present[self.node_var(r).index()] = true;
            }
        }
        (0..self.num_vars())
            .filter(|&i| present[i])
            .map(|i| VarId(i as u32))
            .collect()
    }

    /// Enumerates the satisfying cubes of `f`: each cube is a list of
    /// `(variable, value)` literals along one 1-path (variables not listed
    /// are don't-cares). The number of cubes equals the number of distinct
    /// root-to-1 paths, which can be exponential — intended for small
    /// functions and tests.
    pub fn sat_cubes(&self, f: Ref) -> Vec<Vec<(VarId, bool)>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.cubes_rec(f, &mut path, &mut out);
        out
    }

    fn cubes_rec(&self, f: Ref, path: &mut Vec<(VarId, bool)>, out: &mut Vec<Vec<(VarId, bool)>>) {
        if f == Ref::ZERO {
            return;
        }
        if f == Ref::ONE {
            out.push(path.clone());
            return;
        }
        let var = self.node_var(f);
        path.push((var, false));
        self.cubes_rec(self.node_lo(f), path, out);
        path.pop();
        path.push((var, true));
        self.cubes_rec(self.node_hi(f), path, out);
        path.pop();
    }

    /// One satisfying assignment of `f` over all declared variables (don't
    /// cares default to `false`), or `None` when `f` is unsatisfiable.
    pub fn pick_sat(&self, f: Ref) -> Option<Vec<bool>> {
        if f == Ref::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.num_vars()];
        let mut cur = f;
        while !cur.is_terminal() {
            let var = self.node_var(cur);
            // Prefer the child that can still reach 1.
            let hi = self.node_hi(cur);
            if hi != Ref::ZERO {
                assignment[var.index()] = true;
                cur = hi;
            } else {
                cur = self.node_lo(cur);
            }
        }
        debug_assert_eq!(cur, Ref::ONE, "non-zero BDDs always reach 1");
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Manager, Ref, Ref, Ref, [VarId; 3]) {
        let mut m = Manager::new();
        let a = m.new_var("a");
        let b = m.new_var("b");
        let c = m.new_var("c");
        let (va, vb, vc) = (m.var(a), m.var(b), m.var(c));
        (m, va, vb, vc, [a, b, c])
    }

    #[test]
    fn restrict_matches_shannon() {
        let (mut m, va, vb, vc, [a, _, _]) = setup();
        let ab = m.and(va, vb);
        let f = m.or(ab, vc); // (a∧b)∨c
        let f1 = m.cofactor_by(f, a, true); // b∨c
        let expect = m.or(vb, vc);
        assert_eq!(f1, expect);
        let f0 = m.cofactor_by(f, a, false); // c
        assert_eq!(f0, vc);
        // Simultaneous restriction.
        let (b, c) = (VarId(1), VarId(2));
        let r = m.restrict(f, &[(b, true), (c, false)]);
        assert_eq!(r, va);
    }

    #[test]
    fn quantification() {
        let (mut m, va, vb, _, [a, b, _]) = setup();
        let f = m.and(va, vb);
        // ∃a. a∧b = b ; ∀a. a∧b = 0.
        assert_eq!(m.exists(f, a), vb);
        assert_eq!(m.forall(f, a), Ref::ZERO);
        let g = m.or(va, vb);
        // ∀b. a∨b = a.
        assert_eq!(m.forall(g, b), va);
        assert_eq!(m.exists(g, b), Ref::ONE);
    }

    #[test]
    fn support_is_structural() {
        let (mut m, va, _, vc, [a, b, c]) = setup();
        let f = m.and(va, vc);
        assert_eq!(m.support(f), vec![a, c]);
        let _ = b;
        assert!(m.support(Ref::ONE).is_empty());
    }

    #[test]
    fn sat_cubes_cover_exactly_the_onset() {
        let (mut m, va, vb, vc, _) = setup();
        let ab = m.and(va, vb);
        let f = m.or(ab, vc);
        let cubes = m.sat_cubes(f);
        // Reconstruct the on-set from the cubes and compare to eval.
        let mut onset = [false; 8];
        for cube in &cubes {
            // Expand don't-cares.
            for bits in 0u32..8 {
                let assignment = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                if cube.iter().all(|&(v, val)| assignment[v.index()] == val) {
                    onset[bits as usize] = true;
                }
            }
        }
        for bits in 0u32..8 {
            let assignment = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(onset[bits as usize], m.eval(f, &assignment), "{bits:03b}");
        }
        // Cubes are disjoint by construction (BDD paths).
        assert_eq!(cubes.len(), 3, "paths of the Fig. 2 BDD: a·b, a·¬b·c, ¬a·c");
    }

    #[test]
    fn pick_sat_finds_a_model() {
        let (mut m, va, vb, vc, _) = setup();
        let nb = m.not(vb);
        let t = m.and(va, nb);
        let f = m.and(t, vc); // a ∧ ¬b ∧ c
        let model = m.pick_sat(f).unwrap();
        assert!(m.eval(f, &model));
        assert_eq!(model, vec![true, false, true]);
        assert!(m.pick_sat(Ref::ZERO).is_none());
        assert_eq!(m.pick_sat(Ref::ONE), Some(vec![false, false, false]));
    }
}

//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! Supports the combinational subset used by logic-synthesis flows:
//! `.model`, `.inputs`, `.outputs`, `.names` (with `\` continuations and both
//! on-set and off-set output columns), and `.end`. Latches and hierarchy are
//! out of scope, as in the paper's flow. `.names` tables are decomposed into
//! the primitive gates of [`Network`] at parse time.
//!
//! ```
//! let src = "\
//! .model majority
//! .inputs a b c
//! .outputs f
//! .names a b c f
//! 11- 1
//! 1-1 1
//! -11 1
//! .end
//! ";
//! let n = flowc_logic::blif::parse(src).unwrap();
//! assert_eq!(n.simulate(&[true, true, false]).unwrap(), vec![true]);
//! assert_eq!(n.simulate(&[true, false, false]).unwrap(), vec![false]);
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::cube::{Cube, CubeLit, SopTable};
use crate::{GateKind, LogicError, NetId, Network, Result};

/// One parsed `.names` block before network construction.
#[derive(Debug)]
struct NamesBlock {
    inputs: Vec<String>,
    output: String,
    table: SopTable,
    /// True when the rows describe the off-set (output column `0`).
    complemented: bool,
}

/// Parses BLIF source text into a [`Network`].
///
/// # Errors
///
/// Returns [`LogicError::Parse`] on malformed input, and
/// [`LogicError::CombinationalCycle`] / [`LogicError::Undriven`] on networks
/// that are not well-formed combinational logic.
pub fn parse(source: &str) -> Result<Network> {
    // Join continuation lines first, tracking original line numbers.
    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        let (continues, text) = match trimmed.strip_suffix('\\') {
            Some(stripped) => (true, stripped),
            None => (false, trimmed),
        };
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(text);
                if continues {
                    pending = Some((start, acc));
                } else {
                    logical_lines.push((start, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((line_no, text.to_string()));
                } else if !text.trim().is_empty() {
                    logical_lines.push((line_no, text.to_string()));
                }
            }
        }
    }
    if let Some((start, acc)) = pending {
        logical_lines.push((start, acc));
    }

    let mut model_name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut blocks: Vec<NamesBlock> = Vec::new();
    let mut current: Option<NamesBlock> = None;
    let mut output_polarity_seen: Option<bool> = None;

    let flush = |current: &mut Option<NamesBlock>, blocks: &mut Vec<NamesBlock>| {
        if let Some(b) = current.take() {
            blocks.push(b);
        }
    };

    for (line, text) in &logical_lines {
        let line = *line;
        let mut toks = text.split_whitespace();
        let first = match toks.next() {
            Some(t) => t,
            None => continue,
        };
        match first {
            ".model" => {
                if let Some(name) = toks.next() {
                    model_name = name.to_string();
                }
            }
            ".inputs" => inputs.extend(toks.map(str::to_string)),
            ".outputs" => outputs.extend(toks.map(str::to_string)),
            ".names" => {
                flush(&mut current, &mut blocks);
                output_polarity_seen = None;
                let signals: Vec<String> = toks.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(LogicError::Parse {
                        line,
                        message: ".names needs at least an output signal".into(),
                    });
                }
                let output = signals.last().expect("nonempty").clone();
                let ins = signals[..signals.len() - 1].to_vec();
                current = Some(NamesBlock {
                    table: SopTable::constant_zero(ins.len()),
                    inputs: ins,
                    output,
                    complemented: false,
                });
            }
            ".end" => {
                flush(&mut current, &mut blocks);
            }
            ".latch" | ".subckt" | ".gate" => {
                return Err(LogicError::Parse {
                    line,
                    message: format!(
                        "unsupported BLIF construct `{first}` (combinational subset only)"
                    ),
                });
            }
            other if other.starts_with('.') => {
                return Err(LogicError::Parse {
                    line,
                    message: format!("unknown BLIF directive `{other}`"),
                });
            }
            _ => {
                // A cube row inside a .names block.
                let block = current.as_mut().ok_or_else(|| LogicError::Parse {
                    line,
                    message: "cube row outside of a .names block".into(),
                })?;
                let (cube_text, out_text) = if block.inputs.is_empty() {
                    (String::new(), first.to_string())
                } else {
                    let out = toks.next().ok_or_else(|| LogicError::Parse {
                        line,
                        message: "cube row is missing its output column".into(),
                    })?;
                    (first.to_string(), out.to_string())
                };
                if toks.next().is_some() {
                    return Err(LogicError::Parse {
                        line,
                        message: "trailing tokens after cube output column".into(),
                    });
                }
                let complemented = match out_text.as_str() {
                    "1" => false,
                    "0" => true,
                    other => {
                        return Err(LogicError::Parse {
                            line,
                            message: format!("cube output column must be 0 or 1, got `{other}`"),
                        })
                    }
                };
                match output_polarity_seen {
                    None => {
                        output_polarity_seen = Some(complemented);
                        block.complemented = complemented;
                    }
                    Some(seen) if seen != complemented => {
                        return Err(LogicError::Parse {
                            line,
                            message: "mixed on-set and off-set rows in one .names table".into(),
                        })
                    }
                    _ => {}
                }
                let cube = Cube::parse(&cube_text, line)?;
                if cube.width() != block.inputs.len() {
                    return Err(LogicError::Parse {
                        line,
                        message: format!(
                            "cube has {} positions but .names declares {} inputs",
                            cube.width(),
                            block.inputs.len()
                        ),
                    });
                }
                block.table.push(cube)?;
            }
        }
    }
    flush(&mut current, &mut blocks);

    build_network(model_name, inputs, outputs, blocks)
}

/// Topologically orders the `.names` blocks and lowers each to gates.
fn build_network(
    model_name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    blocks: Vec<NamesBlock>,
) -> Result<Network> {
    let mut network = Network::new(model_name);
    let mut env: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        if env.contains_key(name) {
            return Err(LogicError::DuplicateName(name.clone()));
        }
        env.insert(name.clone(), network.add_input(name.clone()));
    }

    let mut by_output: HashMap<&str, usize> = HashMap::new();
    for (i, b) in blocks.iter().enumerate() {
        if env.contains_key(&b.output) || by_output.insert(b.output.as_str(), i).is_some() {
            return Err(LogicError::MultipleDrivers(b.output.clone()));
        }
    }

    // DFS from each block output, emitting blocks in dependency order.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; blocks.len()];
    let mut order: Vec<usize> = Vec::with_capacity(blocks.len());
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..blocks.len() {
        if marks[root] != Mark::White {
            continue;
        }
        stack.push((root, 0));
        marks[root] = Mark::Grey;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let block = &blocks[node];
            if *child < block.inputs.len() {
                let dep_name = &block.inputs[*child];
                *child += 1;
                if env.contains_key(dep_name) {
                    continue;
                }
                match by_output.get(dep_name.as_str()) {
                    Some(&dep) => match marks[dep] {
                        Mark::White => {
                            marks[dep] = Mark::Grey;
                            stack.push((dep, 0));
                        }
                        Mark::Grey => return Err(LogicError::CombinationalCycle(dep_name.clone())),
                        Mark::Black => {}
                    },
                    None => return Err(LogicError::Undriven(dep_name.clone())),
                }
            } else {
                marks[node] = Mark::Black;
                order.push(node);
                stack.pop();
            }
        }
    }

    for idx in order {
        let block = &blocks[idx];
        let input_ids: Vec<NetId> = block.inputs.iter().map(|name| env[name.as_str()]).collect();
        let out = lower_sop(
            &mut network,
            &block.table,
            &input_ids,
            block.complemented,
            &block.output,
        )?;
        env.insert(block.output.clone(), out);
    }

    for name in &outputs {
        let id = env
            .get(name)
            .copied()
            .ok_or_else(|| LogicError::Undriven(name.clone()))?;
        network.mark_output(id);
    }
    network.validate()?;
    Ok(network)
}

/// Lowers one SOP table to AND/OR/NOT gates, driving a net named `out_name`.
fn lower_sop(
    network: &mut Network,
    table: &SopTable,
    inputs: &[NetId],
    complemented: bool,
    out_name: &str,
) -> Result<NetId> {
    let on_set = |network: &mut Network| -> Result<NetId> {
        if table.cubes().is_empty() {
            return Ok(network.add_const0(format!("{out_name}$zero")));
        }
        let mut cube_nets: Vec<NetId> = Vec::with_capacity(table.cubes().len());
        for (ci, cube) in table.cubes().iter().enumerate() {
            let mut lits: Vec<NetId> = Vec::new();
            for (pos, lit) in cube.lits().iter().enumerate() {
                match lit {
                    CubeLit::DontCare => {}
                    CubeLit::Pos => lits.push(inputs[pos]),
                    CubeLit::Neg => {
                        let inv = network.add_gate(
                            GateKind::Not,
                            &[inputs[pos]],
                            format!("{out_name}$c{ci}n{pos}"),
                        )?;
                        lits.push(inv);
                    }
                }
            }
            let cube_net = match lits.len() {
                0 => network.add_const1(format!("{out_name}$c{ci}")),
                1 => lits[0],
                _ => network.add_gate(GateKind::And, &lits, format!("{out_name}$c{ci}"))?,
            };
            cube_nets.push(cube_net);
        }
        match cube_nets.len() {
            1 => Ok(cube_nets[0]),
            _ => network.add_gate(GateKind::Or, &cube_nets, format!("{out_name}$or")),
        }
    };
    let body = on_set(network)?;
    let final_kind = if complemented {
        GateKind::Not
    } else {
        GateKind::Buf
    };
    network.add_gate(final_kind, &[body], out_name)
}

/// Serializes a [`Network`] to BLIF text.
///
/// N-ary XOR/XNOR and MUX gates are decomposed into two-input `.names`
/// tables with synthesized intermediate signals, so the output is always
/// standard BLIF.
pub fn write(network: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", network.name());
    let _ = write!(out, ".inputs");
    for &i in network.inputs() {
        let _ = write!(out, " {}", network.net_name(i));
    }
    let _ = writeln!(out);
    let _ = write!(out, ".outputs");
    for &o in network.outputs() {
        let _ = write!(out, " {}", network.net_name(o));
    }
    let _ = writeln!(out);

    let mut temp_counter = 0usize;
    for gate in network.gates() {
        let out_name = network.net_name(gate.output).to_string();
        let in_names: Vec<String> = gate
            .inputs
            .iter()
            .map(|&i| network.net_name(i).to_string())
            .collect();
        write_gate(&mut out, gate.kind, &in_names, &out_name, &mut temp_counter);
    }
    let _ = writeln!(out, ".end");
    out
}

fn write_gate(
    out: &mut String,
    kind: GateKind,
    inputs: &[String],
    output: &str,
    temp_counter: &mut usize,
) {
    use GateKind::*;
    match kind {
        Const0 => {
            let _ = writeln!(out, ".names {output}");
        }
        Const1 => {
            let _ = writeln!(out, ".names {output}\n1");
        }
        Buf => {
            let _ = writeln!(out, ".names {} {output}\n1 1", inputs[0]);
        }
        Not => {
            let _ = writeln!(out, ".names {} {output}\n0 1", inputs[0]);
        }
        And => {
            let _ = writeln!(out, ".names {} {output}", inputs.join(" "));
            let _ = writeln!(out, "{} 1", "1".repeat(inputs.len()));
        }
        Nand => {
            let _ = writeln!(out, ".names {} {output}", inputs.join(" "));
            let _ = writeln!(out, "{} 0", "1".repeat(inputs.len()));
        }
        Or => {
            let _ = writeln!(out, ".names {} {output}", inputs.join(" "));
            for i in 0..inputs.len() {
                let mut cube = vec!['-'; inputs.len()];
                cube[i] = '1';
                let _ = writeln!(out, "{} 1", cube.iter().collect::<String>());
            }
        }
        Nor => {
            let _ = writeln!(out, ".names {} {output}", inputs.join(" "));
            let _ = writeln!(out, "{} 1", "0".repeat(inputs.len()));
        }
        Xor | Xnor => {
            // Chain of two-input XORs; final stage applies polarity.
            let mut acc = inputs[0].clone();
            for (i, next) in inputs.iter().enumerate().skip(1) {
                let last = i == inputs.len() - 1;
                let target = if last {
                    output.to_string()
                } else {
                    *temp_counter += 1;
                    format!("{output}${}", *temp_counter)
                };
                let _ = writeln!(out, ".names {acc} {next} {target}");
                if last && kind == Xnor {
                    let _ = writeln!(out, "00 1\n11 1");
                } else {
                    let _ = writeln!(out, "01 1\n10 1");
                }
                acc = target;
            }
        }
        Mux => {
            let _ = writeln!(
                out,
                ".names {} {} {} {output}",
                inputs[0], inputs[1], inputs[2]
            );
            let _ = writeln!(out, "11- 1\n0-1 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    const MAJ: &str = "\
.model majority
.inputs a b c
.outputs f
.names a b c f
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parse_majority() {
        let n = parse(MAJ).unwrap();
        assert_eq!(n.name(), "majority");
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_outputs(), 1);
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = vals.iter().filter(|&&b| b).count() >= 2;
            assert_eq!(n.simulate(&vals).unwrap()[0], expect, "{bits:03b}");
        }
    }

    #[test]
    fn parse_offset_rows() {
        // NAND written with its single off-set row.
        let src = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n";
        let n = parse(src).unwrap();
        assert!(!n.simulate(&[true, true]).unwrap()[0]);
        assert!(n.simulate(&[true, false]).unwrap()[0]);
        assert!(n.simulate(&[false, false]).unwrap()[0]);
    }

    #[test]
    fn parse_constants() {
        let src = ".model t\n.inputs a\n.outputs z o\n.names z\n.names o\n1\n.end\n";
        let n = parse(src).unwrap();
        let out = n.simulate(&[false]).unwrap();
        assert_eq!(out, vec![false, true]);
    }

    #[test]
    fn parse_continuation_lines() {
        let src = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse(src).unwrap();
        assert_eq!(n.num_inputs(), 2);
        assert!(n.simulate(&[true, true]).unwrap()[0]);
    }

    #[test]
    fn parse_comments_stripped() {
        let src = "# header\n.model t # name\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n";
        let n = parse(src).unwrap();
        assert!(n.simulate(&[true]).unwrap()[0]);
    }

    #[test]
    fn forward_references_resolved() {
        // g is used before its .names block appears.
        let src = "\
.model t
.inputs a b
.outputs f
.names g a f
11 1
.names b g
0 1
.end
";
        let n = parse(src).unwrap();
        // f = (!b) & a
        assert!(n.simulate(&[true, false]).unwrap()[0]);
        assert!(!n.simulate(&[true, true]).unwrap()[0]);
    }

    #[test]
    fn cycle_detected() {
        let src = "\
.model t
.inputs a
.outputs f
.names g f
1 1
.names f g
1 1
.end
";
        assert!(matches!(parse(src), Err(LogicError::CombinationalCycle(_))));
    }

    #[test]
    fn undriven_signal_detected() {
        let src = ".model t\n.inputs a\n.outputs f\n.names a ghost f\n11 1\n.end\n";
        assert!(matches!(parse(src), Err(LogicError::Undriven(name)) if name == "ghost"));
    }

    #[test]
    fn mixed_polarity_rejected() {
        let src = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn duplicate_driver_rejected() {
        let src = ".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end\n";
        assert!(matches!(parse(src), Err(LogicError::MultipleDrivers(_))));
    }

    #[test]
    fn latch_rejected() {
        let src = ".model t\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n";
        assert!(parse(src).is_err());
    }

    #[test]
    fn roundtrip_equivalence_all_gate_kinds() {
        let mut n = Network::new("all");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let outs = vec![
            n.add_gate(GateKind::And, &[a, b, c], "g_and").unwrap(),
            n.add_gate(GateKind::Or, &[a, b, c], "g_or").unwrap(),
            n.add_gate(GateKind::Nand, &[a, b], "g_nand").unwrap(),
            n.add_gate(GateKind::Nor, &[a, b], "g_nor").unwrap(),
            n.add_gate(GateKind::Xor, &[a, b, c], "g_xor").unwrap(),
            n.add_gate(GateKind::Xnor, &[a, b, c], "g_xnor").unwrap(),
            n.add_gate(GateKind::Not, &[a], "g_not").unwrap(),
            n.add_gate(GateKind::Buf, &[b], "g_buf").unwrap(),
            n.add_gate(GateKind::Mux, &[a, b, c], "g_mux").unwrap(),
            n.add_const0("g_zero"),
            n.add_const1("g_one"),
        ];
        for o in outs {
            n.mark_output(o);
        }
        let text = write(&n);
        let back = parse(&text).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), n.num_outputs());
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                back.simulate(&vals).unwrap(),
                n.simulate(&vals).unwrap(),
                "assignment {bits:03b}"
            );
        }
    }
}

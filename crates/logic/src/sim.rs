//! Netlist simulation: scalar and 64-way bit-parallel evaluation.

use crate::{LogicError, Network, Result};

impl Network {
    /// Evaluates the network on one input assignment; returns output values
    /// in [`Network::outputs`] order.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputLen`] if `values` does not match the number
    /// of primary inputs.
    pub fn simulate(&self, values: &[bool]) -> Result<Vec<bool>> {
        if values.len() != self.num_inputs() {
            return Err(LogicError::InputLen {
                got: values.len(),
                expected: self.num_inputs(),
            });
        }
        let mut state = vec![false; self.num_nets()];
        for (&net, &v) in self.inputs().iter().zip(values) {
            state[net.index()] = v;
        }
        let mut buf = Vec::new();
        for gate in self.gates() {
            buf.clear();
            buf.extend(gate.inputs.iter().map(|i| state[i.index()]));
            state[gate.output.index()] = gate.kind.eval(&buf);
        }
        Ok(self.outputs().iter().map(|o| state[o.index()]).collect())
    }

    /// Evaluates the network on 64 input assignments at once. Bit `k` of
    /// `words[i]` is the value of input `i` in assignment `k`; bit `k` of
    /// output word `j` is the value of output `j` in assignment `k`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InputLen`] if `words` does not match the number
    /// of primary inputs.
    pub fn simulate64(&self, words: &[u64]) -> Result<Vec<u64>> {
        if words.len() != self.num_inputs() {
            return Err(LogicError::InputLen {
                got: words.len(),
                expected: self.num_inputs(),
            });
        }
        let mut state = vec![0u64; self.num_nets()];
        for (&net, &w) in self.inputs().iter().zip(words) {
            state[net.index()] = w;
        }
        let mut buf = Vec::new();
        for gate in self.gates() {
            buf.clear();
            buf.extend(gate.inputs.iter().map(|i| state[i.index()]));
            state[gate.output.index()] = gate.kind.eval64(&buf);
        }
        Ok(self.outputs().iter().map(|o| state[o.index()]).collect())
    }

    /// Exhaustively enumerates all `2^k` input assignments (requires at most
    /// 24 inputs) and returns, for each output, a packed truth table in
    /// [`crate::TruthTable`] bit order (assignment index = input bits with
    /// input 0 as the least significant bit).
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthTooLarge`] for networks with more than 24
    /// inputs.
    pub fn truth_tables(&self) -> Result<Vec<crate::TruthTable>> {
        let k = self.num_inputs();
        if k > 24 {
            return Err(LogicError::TruthTooLarge(k));
        }
        let rows = 1usize << k;
        let words = rows.div_ceil(64);
        let mut outs = vec![Vec::with_capacity(words); self.num_outputs()];
        let mut inputs = vec![0u64; k];
        for word in 0..words {
            for (i, w) in inputs.iter_mut().enumerate() {
                *w = 0;
                for bit in 0..64usize.min(rows - word * 64) {
                    let assignment = word * 64 + bit;
                    if assignment >> i & 1 == 1 {
                        *w |= 1 << bit;
                    }
                }
            }
            let res = self.simulate64(&inputs)?;
            for (out, val) in outs.iter_mut().zip(res) {
                out.push(val);
            }
        }
        Ok(outs
            .into_iter()
            .map(|w| crate::TruthTable::from_words(k, w))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Network};

    fn xor_tree(width: usize) -> Network {
        let mut n = Network::new("xor");
        let ins: Vec<_> = (0..width).map(|i| n.add_input(format!("x{i}"))).collect();
        let out = n.add_gate(GateKind::Xor, &ins, "p").unwrap();
        n.mark_output(out);
        n
    }

    #[test]
    fn scalar_and_wide_agree_on_parity() {
        let n = xor_tree(6);
        for assignment in 0u32..64 {
            let bits: Vec<bool> = (0..6).map(|i| assignment >> i & 1 == 1).collect();
            let scalar = n.simulate(&bits).unwrap()[0];
            assert_eq!(scalar, assignment.count_ones() % 2 == 1);
        }
        // All 64 assignments in one wide call.
        let words: Vec<u64> = (0..6)
            .map(|i| {
                let mut w = 0u64;
                for a in 0..64u64 {
                    if a >> i & 1 == 1 {
                        w |= 1 << a;
                    }
                }
                w
            })
            .collect();
        let wide = n.simulate64(&words).unwrap()[0];
        for a in 0..64u32 {
            assert_eq!(wide >> a & 1 == 1, a.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn wrong_input_len_is_error() {
        let n = xor_tree(3);
        assert!(n.simulate(&[true]).is_err());
        assert!(n.simulate64(&[0, 0]).is_err());
    }

    #[test]
    fn truth_tables_match_simulation() {
        let mut n = Network::new("maj");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, &[a, b], "").unwrap();
        let ac = n.add_gate(GateKind::And, &[a, c], "").unwrap();
        let bc = n.add_gate(GateKind::And, &[b, c], "").unwrap();
        let m = n.add_gate(GateKind::Or, &[ab, ac, bc], "maj").unwrap();
        n.mark_output(m);
        let tts = n.truth_tables().unwrap();
        assert_eq!(tts.len(), 1);
        for assignment in 0usize..8 {
            let bits: Vec<bool> = (0..3).map(|i| assignment >> i & 1 == 1).collect();
            assert_eq!(tts[0].get(assignment), n.simulate(&bits).unwrap()[0]);
        }
    }

    #[test]
    fn truth_tables_cross_word_boundary() {
        // 7 inputs = 128 rows = 2 words; parity exercises both words.
        let n = xor_tree(7);
        let tt = n.truth_tables().unwrap().remove(0);
        for assignment in 0usize..128 {
            assert_eq!(tt.get(assignment), (assignment.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn truth_tables_reject_large() {
        let n = xor_tree(25);
        assert!(n.truth_tables().is_err());
    }
}

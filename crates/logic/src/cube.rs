//! Sum-of-products cube tables, the common representation behind the BLIF
//! `.names` construct and PLA rows.

use std::fmt;

use crate::{LogicError, Result};

/// The value of one input position in a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CubeLit {
    /// The input must be 0 for the cube to match (`0`).
    Neg,
    /// The input must be 1 for the cube to match (`1`).
    Pos,
    /// The input is unconstrained (`-`).
    DontCare,
}

impl CubeLit {
    /// Parses a single cube character.
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(CubeLit::Neg),
            '1' => Some(CubeLit::Pos),
            '-' => Some(CubeLit::DontCare),
            _ => None,
        }
    }

    /// Renders the cube character.
    pub fn to_char(self) -> char {
        match self {
            CubeLit::Neg => '0',
            CubeLit::Pos => '1',
            CubeLit::DontCare => '-',
        }
    }
}

/// One product term over `k` ordered inputs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    lits: Vec<CubeLit>,
}

impl Cube {
    /// Creates a cube from literal values.
    pub fn new(lits: Vec<CubeLit>) -> Self {
        Cube { lits }
    }

    /// Parses a cube string such as `1-0`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Parse`] (with the caller-supplied line number)
    /// on characters outside `{0,1,-}`.
    pub fn parse(text: &str, line: usize) -> Result<Self> {
        let lits = text
            .chars()
            .map(|c| {
                CubeLit::from_char(c).ok_or_else(|| LogicError::Parse {
                    line,
                    message: format!("invalid cube character `{c}`"),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Cube { lits })
    }

    /// Number of input positions.
    pub fn width(&self) -> usize {
        self.lits.len()
    }

    /// The literals of this cube.
    pub fn lits(&self) -> &[CubeLit] {
        &self.lits
    }

    /// Whether the cube matches an input assignment (`values[i]` is input `i`).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.width()`.
    pub fn matches(&self, values: &[bool]) -> bool {
        assert_eq!(values.len(), self.width(), "cube width mismatch");
        self.lits.iter().zip(values).all(|(l, &v)| match l {
            CubeLit::Neg => !v,
            CubeLit::Pos => v,
            CubeLit::DontCare => true,
        })
    }

    /// Number of care (non-`-`) literals.
    pub fn num_cares(&self) -> usize {
        self.lits
            .iter()
            .filter(|l| !matches!(l, CubeLit::DontCare))
            .count()
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.lits {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

/// A single-output sum-of-products: the output is 1 iff some cube matches.
///
/// An empty cube list denotes constant 0; a single zero-width cube denotes
/// constant 1 (matching BLIF semantics for `.names` with no inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SopTable {
    width: usize,
    cubes: Vec<Cube>,
}

impl SopTable {
    /// Creates a SOP over `width` inputs with no cubes (constant 0).
    pub fn constant_zero(width: usize) -> Self {
        SopTable {
            width,
            cubes: Vec::new(),
        }
    }

    /// Creates a SOP from cubes.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Parse`] if cube widths disagree with `width`.
    pub fn new(width: usize, cubes: Vec<Cube>) -> Result<Self> {
        for c in &cubes {
            if c.width() != width {
                return Err(LogicError::Parse {
                    line: 0,
                    message: format!(
                        "cube `{c}` has width {} but table expects {width}",
                        c.width()
                    ),
                });
            }
        }
        Ok(SopTable { width, cubes })
    }

    /// Number of inputs.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of this SOP.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Adds one cube.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Parse`] on width mismatch.
    pub fn push(&mut self, cube: Cube) -> Result<()> {
        if cube.width() != self.width {
            return Err(LogicError::Parse {
                line: 0,
                message: format!(
                    "cube `{cube}` has width {} but table expects {}",
                    cube.width(),
                    self.width
                ),
            });
        }
        self.cubes.push(cube);
        Ok(())
    }

    /// Evaluates the SOP on an input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.width()`.
    pub fn eval(&self, values: &[bool]) -> bool {
        if self.width == 0 {
            // Zero-width: constant 1 iff at least one (empty) cube exists.
            return !self.cubes.is_empty();
        }
        self.cubes.iter().any(|c| c.matches(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let c = Cube::parse("1-0", 1).unwrap();
        assert_eq!(c.to_string(), "1-0");
        assert_eq!(c.width(), 3);
        assert_eq!(c.num_cares(), 2);
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = Cube::parse("1x0", 7).unwrap_err();
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn cube_matching() {
        let c = Cube::parse("1-0", 0).unwrap();
        assert!(c.matches(&[true, false, false]));
        assert!(c.matches(&[true, true, false]));
        assert!(!c.matches(&[false, true, false]));
        assert!(!c.matches(&[true, true, true]));
    }

    #[test]
    fn sop_eval_or_of_cubes() {
        let t = SopTable::new(
            2,
            vec![Cube::parse("11", 0).unwrap(), Cube::parse("00", 0).unwrap()],
        )
        .unwrap();
        // XNOR
        assert!(t.eval(&[true, true]));
        assert!(t.eval(&[false, false]));
        assert!(!t.eval(&[true, false]));
        assert!(!t.eval(&[false, true]));
    }

    #[test]
    fn sop_constants() {
        let zero = SopTable::constant_zero(0);
        assert!(!zero.eval(&[]));
        let one = SopTable::new(0, vec![Cube::new(vec![])]).unwrap();
        assert!(one.eval(&[]));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut t = SopTable::constant_zero(3);
        assert!(t.push(Cube::parse("10", 0).unwrap()).is_err());
        assert!(SopTable::new(2, vec![Cube::parse("101", 0).unwrap()]).is_err());
    }
}

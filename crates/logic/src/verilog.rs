//! Structural Verilog reading and writing (the gate-level subset used to
//! distribute benchmark netlists such as ISCAS85).
//!
//! Supported constructs: one `module … endmodule` with scalar `input`,
//! `output`, and `wire` declarations, primitive gate instances (`and`,
//! `or`, `nand`, `nor`, `xor`, `xnor`, `buf`, `not`) in the
//! `kind [name] (output, input…);` form (including comma-separated
//! instance lists), `assign lhs = rhs;` buffers with identifier or `1'b0` /
//! `1'b1` right-hand sides, plus `//` and `/* … */` comments. Vectors,
//! behavioural blocks, and hierarchy are out of scope, as in the paper's
//! flow.
//!
//! ```
//! let src = "\
//! module maj (a, b, c, f);
//!   input a, b, c;
//!   output f;
//!   wire ab, ac, bc;
//!   and g1 (ab, a, b);
//!   and g2 (ac, a, c);
//!   and g3 (bc, b, c);
//!   or  g4 (f, ab, ac, bc);
//! endmodule
//! ";
//! let n = flowc_logic::verilog::parse(src).unwrap();
//! assert!(n.simulate(&[true, true, false]).unwrap()[0]);
//! assert!(!n.simulate(&[true, false, false]).unwrap()[0]);
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::{GateKind, LogicError, NetId, Network, Result};

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Punct(char),
    Const(bool),
}

/// Tokenizes Verilog source, stripping comments. Returns tokens with their
/// 1-based line numbers.
fn tokenize(source: &str) -> Result<Vec<(usize, Token)>> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some('/') => {
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('*') => {
                        chars.next();
                        let mut prev = ' ';
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                            }
                            if prev == '*' && c == '/' {
                                break;
                            }
                            prev = c;
                        }
                    }
                    _ => {
                        return Err(LogicError::Parse {
                            line,
                            message: "stray `/`".into(),
                        })
                    }
                }
            }
            '(' | ')' | ',' | ';' | '=' => {
                tokens.push((line, Token::Punct(c)));
                chars.next();
            }
            '1' | '0' => {
                // Possible sized constant 1'b0 / 1'b1, or a name error.
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '\'' || c == '_' {
                        text.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                match text.as_str() {
                    "1'b0" | "1'B0" => tokens.push((line, Token::Const(false))),
                    "1'b1" | "1'B1" => tokens.push((line, Token::Const(true))),
                    other => {
                        return Err(LogicError::Parse {
                            line,
                            message: format!("unsupported literal `{other}`"),
                        })
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '\\' => {
                let mut name = String::new();
                if c == '\\' {
                    // Escaped identifier: up to whitespace.
                    chars.next();
                    while let Some(&c) = chars.peek() {
                        if c.is_whitespace() {
                            break;
                        }
                        name.push(c);
                        chars.next();
                    }
                } else {
                    while let Some(&c) = chars.peek() {
                        if c.is_alphanumeric() || c == '_' || c == '$' || c == '.' {
                            name.push(c);
                            chars.next();
                        } else {
                            break;
                        }
                    }
                }
                tokens.push((line, Token::Ident(name)));
            }
            other => {
                return Err(LogicError::Parse {
                    line,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[derive(Debug)]
struct Instance {
    kind: GateKind,
    output: String,
    inputs: Vec<String>,
    line: usize,
}

fn gate_kind(name: &str) -> Option<GateKind> {
    Some(match name {
        "and" => GateKind::And,
        "or" => GateKind::Or,
        "nand" => GateKind::Nand,
        "nor" => GateKind::Nor,
        "xor" => GateKind::Xor,
        "xnor" => GateKind::Xnor,
        "buf" => GateKind::Buf,
        "not" => GateKind::Not,
        _ => return None,
    })
}

/// Parses structural Verilog into a [`Network`].
///
/// # Errors
///
/// Returns [`LogicError::Parse`] on malformed or unsupported input,
/// [`LogicError::CombinationalCycle`] / [`LogicError::Undriven`] /
/// [`LogicError::MultipleDrivers`] on ill-formed netlists.
pub fn parse(source: &str) -> Result<Network> {
    let tokens = tokenize(source)?;
    let mut pos = 0usize;
    let line_at = |pos: usize| tokens.get(pos).map_or(0, |(l, _)| *l);
    let err = |pos: usize, message: String| LogicError::Parse {
        line: line_at(pos.min(tokens.len().saturating_sub(1))),
        message,
    };

    let expect_ident = |pos: &mut usize| -> Result<String> {
        match tokens.get(*pos) {
            Some((_, Token::Ident(name))) => {
                *pos += 1;
                Ok(name.clone())
            }
            _ => Err(err(*pos, "expected an identifier".into())),
        }
    };
    let expect_punct = |pos: &mut usize, c: char| -> Result<()> {
        match tokens.get(*pos) {
            Some((_, Token::Punct(p))) if *p == c => {
                *pos += 1;
                Ok(())
            }
            _ => Err(err(*pos, format!("expected `{c}`"))),
        }
    };
    let peek_punct = |pos: usize, c: char| -> bool {
        matches!(tokens.get(pos), Some((_, Token::Punct(p))) if *p == c)
    };

    // module NAME ( port, … ) ;
    let kw = expect_ident(&mut pos)?;
    if kw != "module" {
        return Err(err(pos, "expected `module`".into()));
    }
    let module_name = expect_ident(&mut pos)?;
    if peek_punct(pos, '(') {
        pos += 1;
        while !peek_punct(pos, ')') {
            let _ = expect_ident(&mut pos)?; // port order comes from decls
            if peek_punct(pos, ',') {
                pos += 1;
            }
        }
        pos += 1;
    }
    expect_punct(&mut pos, ';')?;

    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut instances: Vec<Instance> = Vec::new();
    let mut fresh = 0usize;

    loop {
        let keyword = expect_ident(&mut pos)?;
        match keyword.as_str() {
            "endmodule" => break,
            "input" | "output" | "wire" => {
                loop {
                    let name = expect_ident(&mut pos)?;
                    match keyword.as_str() {
                        "input" => inputs.push(name),
                        "output" => outputs.push(name),
                        _ => {} // wires are implied by use
                    }
                    if peek_punct(pos, ',') {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                expect_punct(&mut pos, ';')?;
            }
            "assign" => {
                let lhs = expect_ident(&mut pos)?;
                expect_punct(&mut pos, '=')?;
                let inst_line = line_at(pos);
                match tokens.get(pos) {
                    Some((_, Token::Ident(rhs))) => {
                        pos += 1;
                        instances.push(Instance {
                            kind: GateKind::Buf,
                            output: lhs,
                            inputs: vec![rhs.clone()],
                            line: inst_line,
                        });
                    }
                    Some((_, Token::Const(v))) => {
                        pos += 1;
                        instances.push(Instance {
                            kind: if *v {
                                GateKind::Const1
                            } else {
                                GateKind::Const0
                            },
                            output: lhs,
                            inputs: Vec::new(),
                            line: inst_line,
                        });
                    }
                    _ => return Err(err(pos, "assign rhs must be a name or 1'b0/1'b1".into())),
                }
                expect_punct(&mut pos, ';')?;
            }
            prim => {
                let kind = gate_kind(prim).ok_or_else(|| {
                    err(
                        pos,
                        format!("unsupported construct `{prim}` (structural subset)"),
                    )
                })?;
                // One or more `name? ( output, inputs… )` groups.
                loop {
                    // Optional instance name.
                    if let Some((_, Token::Ident(_))) = tokens.get(pos) {
                        pos += 1;
                        fresh += 1;
                    }
                    let inst_line = line_at(pos);
                    expect_punct(&mut pos, '(')?;
                    let output = expect_ident(&mut pos)?;
                    let mut ins = Vec::new();
                    while peek_punct(pos, ',') {
                        pos += 1;
                        ins.push(expect_ident(&mut pos)?);
                    }
                    expect_punct(&mut pos, ')')?;
                    instances.push(Instance {
                        kind,
                        output,
                        inputs: ins,
                        line: inst_line,
                    });
                    if peek_punct(pos, ',') {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                expect_punct(&mut pos, ';')?;
                let _ = fresh;
            }
        }
    }

    build_network(module_name, inputs, outputs, instances)
}

/// Topologically orders the instances (forward references allowed) and
/// lowers them to gates — same approach as the BLIF reader.
fn build_network(
    module_name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    instances: Vec<Instance>,
) -> Result<Network> {
    let mut network = Network::new(module_name);
    let mut env: HashMap<String, NetId> = HashMap::new();
    for name in &inputs {
        if env.contains_key(name) {
            return Err(LogicError::DuplicateName(name.clone()));
        }
        env.insert(name.clone(), network.add_input(name.clone()));
    }
    let mut by_output: HashMap<&str, usize> = HashMap::new();
    for (i, inst) in instances.iter().enumerate() {
        if env.contains_key(&inst.output) || by_output.insert(inst.output.as_str(), i).is_some() {
            return Err(LogicError::MultipleDrivers(inst.output.clone()));
        }
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; instances.len()];
    let mut order = Vec::with_capacity(instances.len());
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..instances.len() {
        if marks[root] != Mark::White {
            continue;
        }
        marks[root] = Mark::Grey;
        stack.push((root, 0));
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let inst = &instances[node];
            if *child < inst.inputs.len() {
                let dep = &inst.inputs[*child];
                *child += 1;
                if env.contains_key(dep) {
                    continue;
                }
                match by_output.get(dep.as_str()) {
                    Some(&d) => match marks[d] {
                        Mark::White => {
                            marks[d] = Mark::Grey;
                            stack.push((d, 0));
                        }
                        Mark::Grey => return Err(LogicError::CombinationalCycle(dep.clone())),
                        Mark::Black => {}
                    },
                    None => return Err(LogicError::Undriven(dep.clone())),
                }
            } else {
                marks[node] = Mark::Black;
                order.push(node);
                stack.pop();
            }
        }
    }

    for idx in order {
        let inst = &instances[idx];
        let operand_ids: Vec<NetId> = inst.inputs.iter().map(|n| env[n.as_str()]).collect();
        // Verilog `buf`/`not` allow multiple outputs; the one-output form is
        // what netlists use and what the instance parser accepts.
        let out = network
            .add_gate(inst.kind, &operand_ids, inst.output.clone())
            .map_err(|e| LogicError::Parse {
                line: inst.line,
                message: e.to_string(),
            })?;
        env.insert(inst.output.clone(), out);
    }
    for name in &outputs {
        let id = env
            .get(name)
            .copied()
            .ok_or_else(|| LogicError::Undriven(name.clone()))?;
        network.mark_output(id);
    }
    network.validate()?;
    Ok(network)
}

/// Serializes a network as structural Verilog.
pub fn write(network: &Network) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = network
        .inputs()
        .iter()
        .chain(network.outputs())
        .map(|&n| network.net_name(n))
        .collect();
    let _ = writeln!(out, "module {} ({});", network.name(), ports.join(", "));
    for &i in network.inputs() {
        let _ = writeln!(out, "  input {};", network.net_name(i));
    }
    for &o in network.outputs() {
        let _ = writeln!(out, "  output {};", network.net_name(o));
    }
    let output_set: std::collections::HashSet<usize> =
        network.outputs().iter().map(|o| o.index()).collect();
    for gate in network.gates() {
        if !output_set.contains(&gate.output.index()) {
            let _ = writeln!(out, "  wire {};", network.net_name(gate.output));
        }
    }
    for (i, gate) in network.gates().iter().enumerate() {
        let output = network.net_name(gate.output);
        let ins: Vec<&str> = gate.inputs.iter().map(|&x| network.net_name(x)).collect();
        match gate.kind {
            GateKind::Const0 => {
                let _ = writeln!(out, "  assign {output} = 1'b0;");
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "  assign {output} = 1'b1;");
            }
            GateKind::Mux => {
                // No mux primitive in the structural subset: decompose.
                let _ = writeln!(out, "  wire {output}$n, {output}$a, {output}$b;");
                let _ = writeln!(out, "  not g{i}n ({output}$n, {});", ins[0]);
                let _ = writeln!(out, "  and g{i}a ({output}$a, {}, {});", ins[0], ins[1]);
                let _ = writeln!(out, "  and g{i}b ({output}$b, {output}$n, {});", ins[2]);
                let _ = writeln!(out, "  or g{i}o ({output}, {output}$a, {output}$b);");
            }
            kind => {
                let _ = writeln!(
                    out,
                    "  {} g{i} ({output}, {});",
                    kind.name(),
                    ins.join(", ")
                );
            }
        }
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL_ADDER: &str = "\
// a structural full adder
module fa (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire ab, ac, bc;
  xor s1 (sum, a, b, cin);
  and g1 (ab, a, b), g2 (ac, a, cin), g3 (bc, b, cin);
  or  g4 (cout, ab, ac, bc);
endmodule
";

    #[test]
    fn parses_full_adder() {
        let n = parse(FULL_ADDER).unwrap();
        assert_eq!(n.name(), "fa");
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_outputs(), 2);
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let out = n.simulate(&vals).unwrap();
            let total = vals.iter().filter(|&&b| b).count();
            assert_eq!(out[0], total % 2 == 1);
            assert_eq!(out[1], total >= 2);
        }
    }

    #[test]
    fn comments_and_block_comments() {
        let src = "module t (a, f); /* block\ncomment */ input a; output f; // eol\nbuf (f, a); endmodule";
        let n = parse(src).unwrap();
        assert!(n.simulate(&[true]).unwrap()[0]);
    }

    #[test]
    fn assign_and_constants() {
        let src = "\
module t (a, f, z, o);
  input a;
  output f, z, o;
  assign f = a;
  assign z = 1'b0;
  assign o = 1'b1;
endmodule
";
        let n = parse(src).unwrap();
        assert_eq!(n.simulate(&[false]).unwrap(), vec![false, false, true]);
        assert_eq!(n.simulate(&[true]).unwrap(), vec![true, false, true]);
    }

    #[test]
    fn forward_references() {
        let src = "\
module t (a, b, f);
  input a, b;
  output f;
  and g2 (f, w, a);
  not g1 (w, b);
endmodule
";
        let n = parse(src).unwrap();
        assert!(n.simulate(&[true, false]).unwrap()[0]);
        assert!(!n.simulate(&[true, true]).unwrap()[0]);
    }

    #[test]
    fn errors_reported() {
        assert!(parse("module t (a); input a; always @(posedge a) ; endmodule").is_err());
        assert!(parse("module t (a, f); input a; output f; and (f, g); endmodule").is_err());
        assert!(matches!(
            parse("module t (f); output f; and g (f, w); and h (w, f); endmodule"),
            Err(LogicError::CombinationalCycle(_))
        ));
        assert!(matches!(
            parse("module t (a, f); input a; output f; buf (f, a); buf (f, a); endmodule"),
            Err(LogicError::MultipleDrivers(_))
        ));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let n = parse(FULL_ADDER).unwrap();
        let text = write(&n);
        let back = parse(&text).unwrap();
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(back.simulate(&vals).unwrap(), n.simulate(&vals).unwrap());
        }
    }

    #[test]
    fn roundtrip_with_mux_and_constants() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let m = n.add_gate(GateKind::Mux, &[a, b, c], "m").unwrap();
        let one = n.add_const1("k1");
        let x = n.add_gate(GateKind::Xor, &[m, one], "x").unwrap();
        n.mark_output(x);
        let text = write(&n);
        let back = parse(&text).unwrap();
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(back.simulate(&vals).unwrap(), n.simulate(&vals).unwrap());
        }
    }
}

use std::fmt;

/// Errors produced while constructing, simulating, or parsing logic networks.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LogicError {
    /// A net id referenced a net that does not exist in the network.
    UnknownNet(usize),
    /// A net name was used twice.
    DuplicateName(String),
    /// A net is driven by more than one source (gate output, input, constant).
    MultipleDrivers(String),
    /// A net has no driver but is read by a gate or output.
    Undriven(String),
    /// A gate was given the wrong number of inputs for its kind.
    Arity {
        /// The gate kind as text.
        kind: &'static str,
        /// Inputs supplied.
        got: usize,
        /// A human-readable description of the expected arity.
        expected: &'static str,
    },
    /// The network contains a combinational cycle.
    CombinationalCycle(String),
    /// A simulation was started with the wrong number of input values.
    InputLen {
        /// Values supplied.
        got: usize,
        /// Primary inputs of the network.
        expected: usize,
    },
    /// A parse error in a BLIF or PLA source, with 1-based line number.
    Parse {
        /// 1-based line where the error was detected.
        line: usize,
        /// Explanation of what went wrong.
        message: String,
    },
    /// A truth table operation mixed tables of different arity.
    TruthArity {
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// A truth table was requested with too many variables to materialize.
    TruthTooLarge(usize),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::UnknownNet(id) => write!(f, "unknown net id {id}"),
            LogicError::DuplicateName(name) => write!(f, "duplicate net name `{name}`"),
            LogicError::MultipleDrivers(name) => {
                write!(f, "net `{name}` has more than one driver")
            }
            LogicError::Undriven(name) => write!(f, "net `{name}` is read but never driven"),
            LogicError::Arity {
                kind,
                got,
                expected,
            } => write!(f, "gate `{kind}` given {got} inputs, expected {expected}"),
            LogicError::CombinationalCycle(name) => {
                write!(f, "combinational cycle through net `{name}`")
            }
            LogicError::InputLen { got, expected } => {
                write!(
                    f,
                    "simulation got {got} input values, network has {expected} inputs"
                )
            }
            LogicError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            LogicError::TruthArity { left, right } => {
                write!(f, "truth tables have mismatched arity ({left} vs {right})")
            }
            LogicError::TruthTooLarge(n) => {
                write!(
                    f,
                    "truth table over {n} variables is too large to materialize"
                )
            }
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_mentions_payload() {
        let cases: Vec<(LogicError, &str)> = vec![
            (LogicError::UnknownNet(7), "7"),
            (LogicError::DuplicateName("x".into()), "x"),
            (LogicError::MultipleDrivers("y".into()), "y"),
            (LogicError::Undriven("z".into()), "z"),
            (
                LogicError::Arity {
                    kind: "and",
                    got: 1,
                    expected: "at least 2",
                },
                "and",
            ),
            (LogicError::CombinationalCycle("loop".into()), "loop"),
            (
                LogicError::InputLen {
                    got: 1,
                    expected: 2,
                },
                "2",
            ),
            (
                LogicError::Parse {
                    line: 3,
                    message: "bad token".into(),
                },
                "line 3",
            ),
            (LogicError::TruthArity { left: 2, right: 3 }, "2"),
            (LogicError::TruthTooLarge(40), "40"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(!text.is_empty());
            assert!(text.contains(needle), "`{text}` should contain `{needle}`");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(LogicError::UnknownNet(0));
    }
}

use std::fmt;

use crate::{LogicError, Result};

/// Maximum variable count for which truth tables are materialized (2^24 bits
/// = 2 MiB per table).
pub const MAX_TRUTH_VARS: usize = 24;

/// A complete truth table over `k` variables, bit-packed 64 rows per word.
///
/// Row index `r` encodes an assignment with variable `i` equal to bit `i`
/// of `r` (variable 0 is least significant).
///
/// ```
/// use flowc_logic::TruthTable;
///
/// let a = TruthTable::variable(3, 0).unwrap();
/// let b = TruthTable::variable(3, 1).unwrap();
/// let f = a.and(&b).unwrap();
/// assert!(f.get(0b011));
/// assert!(!f.get(0b001));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    fn rows(num_vars: usize) -> usize {
        1usize << num_vars
    }

    fn word_count(num_vars: usize) -> usize {
        Self::rows(num_vars).div_ceil(64)
    }

    /// Mask selecting the valid bits of the last word.
    fn tail_mask(num_vars: usize) -> u64 {
        let rows = Self::rows(num_vars);
        if rows.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (rows % 64)) - 1
        }
    }

    fn check_vars(num_vars: usize) -> Result<()> {
        if num_vars > MAX_TRUTH_VARS {
            Err(LogicError::TruthTooLarge(num_vars))
        } else {
            Ok(())
        }
    }

    /// The constant-false table over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthTooLarge`] beyond [`MAX_TRUTH_VARS`].
    pub fn zero(num_vars: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        Ok(TruthTable {
            num_vars,
            words: vec![0; Self::word_count(num_vars)],
        })
    }

    /// The constant-true table over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthTooLarge`] beyond [`MAX_TRUTH_VARS`].
    pub fn one(num_vars: usize) -> Result<Self> {
        let mut t = Self::zero(num_vars)?;
        for w in &mut t.words {
            *w = u64::MAX;
        }
        let last = t.words.len() - 1;
        t.words[last] &= Self::tail_mask(num_vars);
        Ok(t)
    }

    /// The projection table of variable `var` over `num_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthTooLarge`] beyond [`MAX_TRUTH_VARS`], and
    /// [`LogicError::TruthArity`] when `var >= num_vars`.
    pub fn variable(num_vars: usize, var: usize) -> Result<Self> {
        Self::check_vars(num_vars)?;
        if var >= num_vars {
            return Err(LogicError::TruthArity {
                left: var,
                right: num_vars,
            });
        }
        let mut t = Self::zero(num_vars)?;
        for r in 0..Self::rows(num_vars) {
            if r >> var & 1 == 1 {
                t.words[r / 64] |= 1 << (r % 64);
            }
        }
        Ok(t)
    }

    /// Builds a table from a predicate over row indices.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthTooLarge`] beyond [`MAX_TRUTH_VARS`].
    pub fn from_fn(num_vars: usize, mut f: impl FnMut(usize) -> bool) -> Result<Self> {
        let mut t = Self::zero(num_vars)?;
        for r in 0..Self::rows(num_vars) {
            if f(r) {
                t.words[r / 64] |= 1 << (r % 64);
            }
        }
        Ok(t)
    }

    /// Wraps pre-packed words (used by batched simulation). Extra tail bits
    /// are cleared; missing words are zero-filled.
    pub fn from_words(num_vars: usize, mut words: Vec<u64>) -> Self {
        let n = Self::word_count(num_vars);
        words.resize(n, 0);
        let tail = Self::tail_mask(num_vars);
        if let Some(last) = words.last_mut() {
            *last &= tail;
        }
        TruthTable { num_vars, words }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The value at row (assignment) `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2^num_vars`.
    pub fn get(&self, row: usize) -> bool {
        assert!(row < Self::rows(self.num_vars), "row out of range");
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Sets the value at row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= 2^num_vars`.
    pub fn set(&mut self, row: usize, value: bool) {
        assert!(row < Self::rows(self.num_vars), "row out of range");
        if value {
            self.words[row / 64] |= 1 << (row % 64);
        } else {
            self.words[row / 64] &= !(1 << (row % 64));
        }
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Returns `true` if the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant true.
    pub fn is_one(&self) -> bool {
        self.count_ones() == Self::rows(self.num_vars) as u64
    }

    fn binop(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Result<Self> {
        if self.num_vars != other.num_vars {
            return Err(LogicError::TruthArity {
                left: self.num_vars,
                right: other.num_vars,
            });
        }
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(TruthTable::from_words(self.num_vars, words))
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthArity`] on mismatched variable counts.
    pub fn and(&self, other: &Self) -> Result<Self> {
        self.binop(other, |a, b| a & b)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthArity`] on mismatched variable counts.
    pub fn or(&self, other: &Self) -> Result<Self> {
        self.binop(other, |a, b| a | b)
    }

    /// Exclusive-or.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::TruthArity`] on mismatched variable counts.
    pub fn xor(&self, other: &Self) -> Result<Self> {
        self.binop(other, |a, b| a ^ b)
    }

    /// Complement.
    pub fn not(&self) -> Self {
        let words = self.words.iter().map(|&w| !w).collect();
        TruthTable::from_words(self.num_vars, words)
    }

    /// Positive or negative cofactor with respect to variable `var`.
    ///
    /// The result still ranges over the same variable set; rows where `var`
    /// disagrees with `value` take the value of their mirror row.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.num_vars, "cofactor variable out of range");
        let rows = Self::rows(self.num_vars);
        let mut out = self.clone();
        for r in 0..rows {
            let src = if value {
                r | (1 << var)
            } else {
                r & !(1 << var)
            };
            out.set(r, self.get(src));
        }
        out
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars: ", self.num_vars)?;
        let rows = Self::rows(self.num_vars);
        if rows <= 32 {
            for r in (0..rows).rev() {
                write!(f, "{}", self.get(r) as u8)?;
            }
        } else {
            write!(f, "{} ones / {} rows", self.count_ones(), rows)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let z = TruthTable::zero(5).unwrap();
        let o = TruthTable::one(5).unwrap();
        assert!(z.is_zero() && !z.is_one());
        assert!(o.is_one() && !o.is_zero());
        assert_eq!(o.count_ones(), 32);
        assert_eq!(z.not(), o);
        assert_eq!(o.not(), z);
    }

    #[test]
    fn tail_bits_are_clean_after_not() {
        // 3 vars = 8 rows, tail mask matters.
        let z = TruthTable::zero(3).unwrap();
        let o = z.not();
        assert!(o.is_one());
        assert_eq!(o.count_ones(), 8);
    }

    #[test]
    fn variable_projection() {
        let v2 = TruthTable::variable(4, 2).unwrap();
        for r in 0..16 {
            assert_eq!(v2.get(r), r >> 2 & 1 == 1);
        }
        assert!(TruthTable::variable(4, 4).is_err());
    }

    #[test]
    fn boolean_algebra_laws() {
        let a = TruthTable::variable(4, 0).unwrap();
        let b = TruthTable::variable(4, 1).unwrap();
        // De Morgan
        assert_eq!(a.and(&b).unwrap().not(), a.not().or(&b.not()).unwrap());
        // xor = (a|b) & !(a&b)
        assert_eq!(
            a.xor(&b).unwrap(),
            a.or(&b).unwrap().and(&a.and(&b).unwrap().not()).unwrap()
        );
        // annihilation / identity
        let one = TruthTable::one(4).unwrap();
        let zero = TruthTable::zero(4).unwrap();
        assert_eq!(a.and(&zero).unwrap(), zero);
        assert_eq!(a.or(&one).unwrap(), one);
        assert_eq!(a.and(&one).unwrap(), a);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let a = TruthTable::variable(3, 0).unwrap();
        let b = TruthTable::variable(4, 0).unwrap();
        assert!(a.and(&b).is_err());
    }

    #[test]
    fn cofactors_shannon_expand() {
        // f = (x0 & x1) | x2 ; check f = x?f1 : f0 on x1.
        let x0 = TruthTable::variable(3, 0).unwrap();
        let x1 = TruthTable::variable(3, 1).unwrap();
        let x2 = TruthTable::variable(3, 2).unwrap();
        let f = x0.and(&x1).unwrap().or(&x2).unwrap();
        let f1 = f.cofactor(1, true);
        let f0 = f.cofactor(1, false);
        let recomposed = x1
            .and(&f1)
            .unwrap()
            .or(&x1.not().and(&f0).unwrap())
            .unwrap();
        assert_eq!(recomposed, f);
        // Cofactors are independent of the cofactored variable.
        for r in 0..8usize {
            assert_eq!(f1.get(r), f1.get(r ^ 0b010));
            assert_eq!(f0.get(r), f0.get(r ^ 0b010));
        }
    }

    #[test]
    fn from_fn_and_get_set_roundtrip() {
        let mut t = TruthTable::from_fn(5, |r| r % 3 == 0).unwrap();
        for r in 0..32 {
            assert_eq!(t.get(r), r % 3 == 0);
        }
        t.set(1, true);
        t.set(0, false);
        assert!(t.get(1) && !t.get(0));
    }

    #[test]
    fn size_cap_enforced() {
        assert!(TruthTable::zero(MAX_TRUTH_VARS).is_ok());
        assert!(TruthTable::zero(MAX_TRUTH_VARS + 1).is_err());
    }

    #[test]
    fn debug_shows_bits_small_and_summary_large() {
        let t = TruthTable::variable(2, 0).unwrap();
        // Rows are printed most-significant first: x0 is true in rows 1 and 3.
        assert_eq!(format!("{t:?}"), "TruthTable(2 vars: 1010)");
        let big = TruthTable::one(10).unwrap();
        assert!(format!("{big:?}").contains("1024 ones"));
    }
}

//! The benchmark population used by the experimental evaluation.
//!
//! The paper evaluates on nine ISCAS85 circuits and eight EPFL control
//! circuits. Those netlist files are not redistributable in this repository,
//! so [`iscas`] and [`epfl`] provide generators for circuits of the same kind
//! and comparable I/O profile (DESIGN.md §3 documents each substitution).
//! [`all`] returns the full population together with the paper's reference
//! statistics (Table I), so harness output can print paper-vs-measured side
//! by side.

pub mod blocks;
pub mod epfl;
pub mod iscas;

use crate::{Network, Result};

/// Which benchmark suite a circuit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// ISCAS85-like arithmetic/control circuits.
    Iscas85,
    /// EPFL-control-like circuits.
    EpflControl,
}

impl Suite {
    /// Human-readable suite name.
    pub fn name(self) -> &'static str {
        match self {
            Suite::Iscas85 => "ISCAS85",
            Suite::EpflControl => "EPFL control",
        }
    }
}

/// Reference statistics from Table I of the paper, for side-by-side output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperStats {
    /// Primary inputs of the original benchmark.
    pub inputs: usize,
    /// Primary outputs of the original benchmark.
    pub outputs: usize,
    /// SBDD nodes reported in the paper.
    pub nodes: usize,
    /// SBDD edges reported in the paper.
    pub edges: usize,
}

/// One benchmark: a named circuit generator plus the paper's reference data.
#[derive(Clone)]
pub struct Benchmark {
    /// Short name (matches the paper's naming).
    pub name: &'static str,
    /// The suite the original circuit belongs to.
    pub suite: Suite,
    /// Generator for our structural analogue.
    pub build: fn() -> Result<Network>,
    /// Table I statistics of the original circuit.
    pub paper: PaperStats,
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("paper", &self.paper)
            .finish()
    }
}

impl Benchmark {
    /// Builds the circuit.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the generator (none are expected
    /// for the registered benchmarks; generators are covered by tests).
    pub fn network(&self) -> Result<Network> {
        (self.build)()
    }
}

/// The full benchmark population, in the paper's Table I order.
pub fn all() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "c432",
            suite: Suite::Iscas85,
            build: iscas::c432_like,
            paper: PaperStats {
                inputs: 36,
                outputs: 7,
                nodes: 1291,
                edges: 2578,
            },
        },
        Benchmark {
            name: "c499",
            suite: Suite::Iscas85,
            build: iscas::c499_like,
            paper: PaperStats {
                inputs: 41,
                outputs: 32,
                nodes: 11146,
                edges: 22164,
            },
        },
        Benchmark {
            name: "c880",
            suite: Suite::Iscas85,
            build: iscas::c880_like,
            paper: PaperStats {
                inputs: 60,
                outputs: 26,
                nodes: 4431,
                edges: 8858,
            },
        },
        Benchmark {
            name: "c1355",
            suite: Suite::Iscas85,
            build: iscas::c1355_like,
            paper: PaperStats {
                inputs: 41,
                outputs: 32,
                nodes: 11146,
                edges: 22164,
            },
        },
        Benchmark {
            name: "c1908",
            suite: Suite::Iscas85,
            build: iscas::c1908_like,
            paper: PaperStats {
                inputs: 33,
                outputs: 25,
                nodes: 28224,
                edges: 56348,
            },
        },
        Benchmark {
            name: "c2670",
            suite: Suite::Iscas85,
            build: iscas::c2670_like,
            paper: PaperStats {
                inputs: 233,
                outputs: 140,
                nodes: 6764,
                edges: 12970,
            },
        },
        Benchmark {
            name: "c3540",
            suite: Suite::Iscas85,
            build: iscas::c3540_like,
            paper: PaperStats {
                inputs: 50,
                outputs: 22,
                nodes: 59265,
                edges: 118442,
            },
        },
        Benchmark {
            name: "c5315",
            suite: Suite::Iscas85,
            build: iscas::c5315_like,
            paper: PaperStats {
                inputs: 178,
                outputs: 123,
                nodes: 14362,
                edges: 28232,
            },
        },
        Benchmark {
            name: "c7552",
            suite: Suite::Iscas85,
            build: iscas::c7552_like,
            paper: PaperStats {
                inputs: 207,
                outputs: 108,
                nodes: 90651,
                edges: 180870,
            },
        },
        Benchmark {
            name: "arbiter",
            suite: Suite::EpflControl,
            build: epfl::arbiter_like,
            paper: PaperStats {
                inputs: 256,
                outputs: 129,
                nodes: 25109,
                edges: 50214,
            },
        },
        Benchmark {
            name: "cavlc",
            suite: Suite::EpflControl,
            build: epfl::cavlc_like,
            paper: PaperStats {
                inputs: 10,
                outputs: 11,
                nodes: 436,
                edges: 868,
            },
        },
        Benchmark {
            name: "ctrl",
            suite: Suite::EpflControl,
            build: epfl::ctrl_like,
            paper: PaperStats {
                inputs: 7,
                outputs: 26,
                nodes: 89,
                edges: 174,
            },
        },
        Benchmark {
            name: "dec",
            suite: Suite::EpflControl,
            build: epfl::dec,
            paper: PaperStats {
                inputs: 8,
                outputs: 256,
                nodes: 512,
                edges: 1020,
            },
        },
        Benchmark {
            name: "i2c",
            suite: Suite::EpflControl,
            build: epfl::i2c_like,
            paper: PaperStats {
                inputs: 147,
                outputs: 142,
                nodes: 1204,
                edges: 2404,
            },
        },
        Benchmark {
            name: "int2float",
            suite: Suite::EpflControl,
            build: epfl::int2float,
            paper: PaperStats {
                inputs: 11,
                outputs: 7,
                nodes: 159,
                edges: 314,
            },
        },
        Benchmark {
            name: "priority",
            suite: Suite::EpflControl,
            build: epfl::priority_like,
            paper: PaperStats {
                inputs: 128,
                outputs: 8,
                nodes: 772,
                edges: 1540,
            },
        },
        Benchmark {
            name: "router",
            suite: Suite::EpflControl,
            build: epfl::router_like,
            paper: PaperStats {
                inputs: 60,
                outputs: 30,
                nodes: 219,
                edges: 434,
            },
        },
    ]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    all().into_iter().find(|b| b.name == name)
}

/// The EPFL-control subset (used by the CONTRA comparison, Figure 13).
pub fn epfl_control() -> Vec<Benchmark> {
    all()
        .into_iter()
        .filter(|b| b.suite == Suite::EpflControl)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_ordered() {
        let names: Vec<&str> = all().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "c432",
                "c499",
                "c880",
                "c1355",
                "c1908",
                "c2670",
                "c3540",
                "c5315",
                "c7552",
                "arbiter",
                "cavlc",
                "ctrl",
                "dec",
                "i2c",
                "int2float",
                "priority",
                "router"
            ]
        );
        assert_eq!(epfl_control().len(), 8);
    }

    #[test]
    fn every_benchmark_builds() {
        for b in all() {
            let n = b.network().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            n.validate().unwrap();
            assert!(n.num_outputs() > 0, "{}", b.name);
        }
    }

    #[test]
    fn exact_rebuilds_match_paper_profile() {
        // dec, priority, int2float, ctrl are rebuilt to the exact I/O profile.
        for (name, ins, outs) in [
            ("dec", 8, 256),
            ("priority", 128, 8),
            ("int2float", 11, 7),
            ("ctrl", 7, 26),
        ] {
            let b = by_name(name).unwrap();
            let n = b.network().unwrap();
            assert_eq!(n.num_inputs(), ins, "{name} inputs");
            assert_eq!(n.num_outputs(), outs, "{name} outputs");
            assert_eq!(b.paper.inputs, ins);
            assert_eq!(b.paper.outputs, outs);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("c432").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}

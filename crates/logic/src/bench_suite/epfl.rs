//! EPFL-control-like benchmark circuits.
//!
//! `dec` and `priority` are rebuilt exactly from their specifications (an
//! 8-to-256 decoder and a 128-bit priority encoder). The remaining circuits
//! are structural analogues of the EPFL control benchmarks: a round-robin
//! arbiter, a CAVLC-style coding table, an opcode decoder (`ctrl`), an
//! I²C-controller-style next-state block, an integer-to-float converter, and
//! a router lookup. See DESIGN.md §3.

use super::blocks::*;
use crate::{GateKind, NetId, Network, Result};

/// arbiter-like: round-robin arbiter over `W` request lines with a binary
/// rotation pointer. Grants the first asserted request at or after the
/// pointer position (wrapping). Dense dependence of every grant on all
/// requests and the pointer makes this a hard instance, as in the paper.
pub fn arbiter_like() -> Result<Network> {
    const W: usize = 24;
    const PTR_BITS: usize = 5; // ceil(log2(24))
    let mut n = Network::new("arbiter_like");
    let req = input_bus(&mut n, "req", W);
    let ptr = input_bus(&mut n, "ptr", PTR_BITS);

    // One-hot decode of the pointer (values >= W never match a start).
    let starts = decoder(&mut n, &ptr, None, "ptr_dec")?;

    // For each start position s and grant position g, grant g iff the
    // pointer is s, req[g] is set, and no request in the rotated window
    // between s and g is set. Build per-start grant chains, then OR over
    // starts for each position.
    let mut grant_terms: Vec<Vec<NetId>> = vec![Vec::new(); W];
    for (s, &start) in starts.iter().enumerate().take(W) {
        let mut none_before = start;
        for off in 0..W {
            let g = (s + off) % W;
            let term = n.add_gate(
                GateKind::And,
                &[none_before, req[g]],
                format!("t_s{s}_g{g}"),
            )?;
            grant_terms[g].push(term);
            if off + 1 < W {
                let nr = n.add_gate(GateKind::Not, &[req[g]], format!("nr_s{s}_{off}"))?;
                none_before =
                    n.add_gate(GateKind::And, &[none_before, nr], format!("nb_s{s}_{off}"))?;
            }
        }
    }
    for (g, terms) in grant_terms.into_iter().enumerate() {
        let out = n.add_gate(GateKind::Or, &terms, format!("grant{g}"))?;
        n.mark_output(out);
    }
    let any = n.add_gate(GateKind::Or, &req, "any")?;
    n.mark_output(any);
    Ok(n)
}

/// Deterministic xorshift64* generator for the synthetic coding tables.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// cavlc-like: an irregular 10-input 11-output coding table, modeled as a
/// fixed pseudorandom two-level cover (seeded, fully reproducible). The real
/// cavlc benchmark is a context-adaptive VLC table with exactly this I/O
/// profile and a similarly unstructured on-set.
pub fn cavlc_like() -> Result<Network> {
    let mut n = Network::new("cavlc_like");
    let ins = input_bus(&mut n, "x", 10);
    let ninv: Vec<NetId> = ins
        .iter()
        .enumerate()
        .map(|(i, &x)| n.add_gate(GateKind::Not, &[x], format!("nx{i}")))
        .collect::<Result<_>>()?;
    let mut seed = 0xCA41_C0DE_5EED_0001u64;
    for o in 0..11 {
        let mut cubes = Vec::new();
        for c in 0..12 {
            let bits = xorshift(&mut seed);
            let mut lits = Vec::new();
            for (i, (&x, &nx)) in ins.iter().zip(&ninv).enumerate() {
                match bits >> (2 * i) & 0b11 {
                    0b00 | 0b01 => {} // don't care (half the positions)
                    0b10 => lits.push(x),
                    _ => lits.push(nx),
                }
            }
            if lits.is_empty() {
                continue;
            }
            let cube = if lits.len() == 1 {
                lits[0]
            } else {
                n.add_gate(GateKind::And, &lits, format!("o{o}c{c}"))?
            };
            cubes.push(cube);
        }
        let out = n.add_gate(GateKind::Or, &cubes, format!("y{o}"))?;
        n.mark_output(out);
    }
    Ok(n)
}

/// ctrl-like: a 7-bit opcode decoder producing 26 control lines, in the
/// style of a small RISC control unit (register write, memory op, branch,
/// ALU function selects, …).
pub fn ctrl_like() -> Result<Network> {
    let mut n = Network::new("ctrl_like");
    let op = input_bus(&mut n, "op", 7);
    let nop: Vec<NetId> = op
        .iter()
        .enumerate()
        .map(|(i, &x)| n.add_gate(GateKind::Not, &[x], format!("nop{i}")))
        .collect::<Result<_>>()?;
    // Opcode classes on the top three bits.
    let class = |n: &mut Network, pattern: u8, tag: &str| -> Result<NetId> {
        let lits: Vec<NetId> = (4..7)
            .map(|i| {
                if pattern >> (i - 4) & 1 == 1 {
                    op[i]
                } else {
                    nop[i]
                }
            })
            .collect();
        n.add_gate(GateKind::And, &lits, tag)
    };
    let is_alu = class(&mut n, 0b000, "is_alu")?;
    let is_imm = class(&mut n, 0b001, "is_imm")?;
    let is_load = class(&mut n, 0b010, "is_load")?;
    let is_store = class(&mut n, 0b011, "is_store")?;
    let is_branch = class(&mut n, 0b100, "is_branch")?;
    let is_jump = class(&mut n, 0b101, "is_jump")?;
    let is_sys = class(&mut n, 0b110, "is_sys")?;
    let is_ext = class(&mut n, 0b111, "is_ext")?;

    let reg_write = n.add_gate(
        GateKind::Or,
        &[is_alu, is_imm, is_load, is_jump],
        "reg_write",
    )?;
    let mem_read = n.add_gate(GateKind::Buf, &[is_load], "mem_read")?;
    let mem_write = n.add_gate(GateKind::Buf, &[is_store], "mem_write")?;
    let alu_src_imm = n.add_gate(GateKind::Or, &[is_imm, is_load, is_store], "alu_src_imm")?;
    let pc_branch = n.add_gate(GateKind::Or, &[is_branch, is_jump], "pc_branch")?;
    for o in [reg_write, mem_read, mem_write, alu_src_imm, pc_branch] {
        n.mark_output(o);
    }
    // ALU function: 4 lines decoded from low bits when in an ALU class.
    let alu_active = n.add_gate(GateKind::Or, &[is_alu, is_imm], "alu_active")?;
    let funcs = decoder(&mut n, &op[0..2], Some(alu_active), "aluf")?;
    for f in funcs {
        n.mark_output(f);
    }
    // Branch condition lines: 4 decoded from bits 2..4 in branch class.
    let bconds = decoder(&mut n, &op[2..4], Some(is_branch), "bcond")?;
    for b in bconds {
        n.mark_output(b);
    }
    // System/extension control lines mix low bits irregularly.
    for (i, lo) in op[0..4].iter().enumerate() {
        let s = n.add_gate(GateKind::And, &[is_sys, *lo], format!("sys{i}"))?;
        n.mark_output(s);
        let e = n.add_gate(GateKind::And, &[is_ext, *lo], format!("ext{i}"))?;
        n.mark_output(e);
    }
    // Illegal-opcode trap: sys with all low bits set.
    let all_low = n.add_gate(GateKind::And, &op[0..4], "all_low")?;
    let trap = n.add_gate(GateKind::And, &[is_sys, all_low], "trap")?;
    n.mark_output(trap);
    // Class indicator lines (visible to the datapath).
    for c in [is_load, is_store, is_branch, is_jump] {
        n.mark_output(c);
    }
    Ok(n)
}

/// dec: the exact EPFL `dec` benchmark — an 8-to-256 line decoder.
pub fn dec() -> Result<Network> {
    let mut n = Network::new("dec");
    let sel = input_bus(&mut n, "s", 8);
    let outs = decoder(&mut n, &sel, None, "d")?;
    for o in outs {
        n.mark_output(o);
    }
    Ok(n)
}

/// i2c-like: wide, shallow controller logic — next-state, counter, shift,
/// address-match and gated-enable cones in the style of the i2c benchmark.
pub fn i2c_like() -> Result<Network> {
    let mut n = Network::new("i2c_like");
    let state = input_bus(&mut n, "st", 6);
    let cnt = input_bus(&mut n, "cnt", 4);
    let data = input_bus(&mut n, "dat", 8);
    // Interleave the incoming address with the own-address register so the
    // match comparator is local in the variable order.
    let (addr, own) = interleaved_input_buses(&mut n, "adr", "own", 8);
    let ctrl = input_bus(&mut n, "ctl", 6);
    let ens = input_bus(&mut n, "en", 20);

    // Address match and qualified start condition.
    let addr_match = equality(&mut n, &addr, &own, "am")?;
    let start = n.add_gate(GateKind::And, &[ctrl[0], ctrl[1]], "start")?;
    let stop = n.add_gate(GateKind::And, &[ctrl[2], ctrl[3]], "stop")?;
    let go = n.add_gate(GateKind::And, &[addr_match, start], "go")?;
    n.mark_output(addr_match);
    n.mark_output(go);
    n.mark_output(stop);

    // Next state: increment-style mixing of state with control.
    for (i, &s) in state.iter().enumerate() {
        let t = n.add_gate(GateKind::Xor, &[s, ctrl[i % ctrl.len()]], format!("nsx{i}"))?;
        let ns = n.add_gate(GateKind::Mux, &[go, t, s], format!("next_st{i}"))?;
        n.mark_output(ns);
    }
    // Counter + 1 (ripple increment).
    let mut carry = n.add_const1("inc_c0");
    for (i, &c) in cnt.iter().enumerate() {
        let s = n.add_gate(GateKind::Xor, &[c, carry], format!("cnt_n{i}"))?;
        n.mark_output(s);
        if i + 1 < cnt.len() {
            carry = n.add_gate(GateKind::And, &[c, carry], format!("inc_c{}", i + 1))?;
        }
    }
    let cnt_max = n.add_gate(GateKind::And, &cnt, "cnt_max")?;
    n.mark_output(cnt_max);
    // Shifted data byte (shift-left by one, serial input = ctrl[4]).
    n.mark_output(ctrl[4]);
    for (i, &d) in data.iter().take(7).enumerate() {
        let b = n.add_gate(GateKind::Buf, &[d], format!("sh{i}"))?;
        n.mark_output(b);
    }
    // Gated enables: en[i] qualified by scattered conditions.
    for (i, &e) in ens.iter().enumerate() {
        let q = match i % 3 {
            0 => n.add_gate(GateKind::And, &[e, addr_match], format!("gen{i}"))?,
            1 => n.add_gate(GateKind::And, &[e, ctrl[5]], format!("gen{i}"))?,
            _ => n.add_gate(GateKind::Mux, &[go, e, data[i % 8]], format!("gen{i}"))?,
        };
        n.mark_output(q);
    }
    // Status matrix (the real i2c exposes ~142 outputs of shallow control
    // cones): per state×control interrupt lines, data/address flags, and
    // checksum taps. Each cone is 1–4 gates, keeping the SBDD shallow while
    // matching the benchmark's gate- and output-heavy profile.
    for (i, &s) in state.iter().enumerate() {
        for (j, &c) in ctrl.iter().enumerate().take(4) {
            let line = n.add_gate(GateKind::And, &[s, c], format!("irq{i}_{j}"))?;
            n.mark_output(line);
        }
    }
    for i in 0..8 {
        let fl = n.add_gate(
            GateKind::Xor,
            &[data[i], addr[i % addr.len()]],
            format!("flag{i}"),
        )?;
        n.mark_output(fl);
        let st = n.add_gate(
            GateKind::Mux,
            &[addr_match, data[i], ens[i]],
            format!("stat{i}"),
        )?;
        n.mark_output(st);
    }
    // Running-parity taps over the data byte (a serial-checksum structure).
    let mut acc = data[0];
    for (i, &d) in data.iter().enumerate().skip(1) {
        acc = n.add_gate(GateKind::Xor, &[acc, d], format!("chk{i}"))?;
        n.mark_output(acc);
    }
    // Busy/ready handshake lines mixing enables pairwise.
    for i in 0..16 {
        let line = n.add_gate(
            GateKind::And,
            &[ens[i], ens[(i + 1) % ens.len()]],
            format!("hs{i}"),
        )?;
        n.mark_output(line);
    }
    Ok(n)
}

/// int2float: converts an 11-bit two's-complement integer to a 7-bit
/// minifloat {sign, 4-bit exponent, 2-bit mantissa}, truncating. Matches the
/// EPFL benchmark's I/O profile (11 in, 7 out).
pub fn int2float() -> Result<Network> {
    let mut n = Network::new("int2float");
    let x = input_bus(&mut n, "i", 11);
    let sign = x[10];
    // Magnitude: negate when sign (two's complement: ~x + 1) over low 10 bits.
    let inv: Vec<NetId> = x[..10]
        .iter()
        .enumerate()
        .map(|(i, &b)| n.add_gate(GateKind::Not, &[b], format!("inv{i}")))
        .collect::<Result<_>>()?;
    let mut carry = n.add_const1("negc0");
    let mut neg = Vec::with_capacity(10);
    for (i, &iv) in inv.iter().enumerate() {
        let s = n.add_gate(GateKind::Xor, &[iv, carry], format!("neg{i}"))?;
        neg.push(s);
        if i + 1 < 10 {
            carry = n.add_gate(GateKind::And, &[iv, carry], format!("negc{}", i + 1))?;
        }
    }
    let mag = mux_bus(&mut n, sign, &neg, &x[..10], "mag")?;
    // Leading-one position -> exponent; two bits below it -> mantissa.
    let onehot = leading_one(&mut n, &mag, "lo")?;
    let mut exp = Vec::with_capacity(4);
    for b in 0..4 {
        let members: Vec<NetId> = onehot
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> b & 1 == 1)
            .map(|(_, &g)| g)
            .collect();
        let bit = match members.len() {
            0 => n.add_const0(format!("exp{b}")),
            1 => n.add_gate(GateKind::Buf, &[members[0]], format!("exp{b}"))?,
            _ => n.add_gate(GateKind::Or, &members, format!("exp{b}"))?,
        };
        exp.push(bit);
    }
    // Mantissa bit m (m in 0..2): OR over positions p>=2 of onehot[p]&mag[p-2+m].
    let mut man = Vec::with_capacity(2);
    for m in 0..2usize {
        let mut terms = Vec::new();
        for p in 2..10usize {
            let t = n.add_gate(
                GateKind::And,
                &[onehot[p], mag[p - 2 + m]],
                format!("man{m}p{p}"),
            )?;
            terms.push(t);
        }
        let bit = n.add_gate(GateKind::Or, &terms, format!("man{m}"))?;
        man.push(bit);
    }
    n.mark_output(sign);
    for e in exp {
        n.mark_output(e);
    }
    for m in man {
        n.mark_output(m);
    }
    Ok(n)
}

/// priority: the exact EPFL `priority` benchmark profile — a 128-bit
/// priority encoder (7-bit index + valid).
pub fn priority_like() -> Result<Network> {
    let mut n = Network::new("priority");
    let req = input_bus(&mut n, "r", 128);
    let (idx, valid) = priority_encoder(&mut n, &req, "pe")?;
    for b in idx {
        n.mark_output(b);
    }
    n.mark_output(valid);
    Ok(n)
}

/// router-like: destination lookup against four built-in route prefixes
/// (routing tables are programmed at configuration time, so the lookup
/// constants are part of the circuit — which is what keeps the real EPFL
/// router's BDD tiny relative to its input count), plus gated payload
/// forwarding and per-port credit logic.
pub fn router_like() -> Result<Network> {
    let mut n = Network::new("router_like");
    let dest = input_bus(&mut n, "dst", 8);
    let valid = n.add_input("valid");
    let payload = input_bus(&mut n, "pay", 16);
    let credit = input_bus(&mut n, "cr", 32);
    let ndest: Vec<NetId> = dest
        .iter()
        .enumerate()
        .map(|(i, &d)| n.add_gate(GateKind::Not, &[d], format!("nd{i}")))
        .collect::<Result<_>>()?;
    // Longest-prefix match against fixed route entries: entry k matches the
    // top 8−2k bits of its prefix constant.
    const PREFIXES: [usize; 4] = [0xAB, 0xA8, 0xC0, 0x40];
    let mut matches = Vec::new();
    for (k, prefix) in PREFIXES.into_iter().enumerate() {
        let width = 8 - 2 * k;
        let lits: Vec<NetId> = (8 - width..8)
            .map(|i| {
                if prefix >> i & 1 == 1 {
                    dest[i]
                } else {
                    ndest[i]
                }
            })
            .collect();
        let m = n.add_gate(GateKind::And, &lits, format!("m{k}"))?;
        matches.push(m);
    }
    // Priority: entry 0 (longest prefix) wins.
    let (sel, any) = priority_encoder(&mut n, &matches, "rp")?;
    let hit = n.add_gate(GateKind::And, &[any, valid], "hit")?;
    n.mark_output(hit);
    let ports = decoder(&mut n, &sel, Some(hit), "port")?;
    for p in ports {
        n.mark_output(p);
    }
    for (i, &p) in payload.iter().enumerate() {
        let f = n.add_gate(GateKind::And, &[p, hit], format!("fwd{i}"))?;
        n.mark_output(f);
    }
    // Per-port credit availability: each port has an 8-bit credit window;
    // report "can send" = any credit high and "low water" = upper half low.
    for port in 0..4 {
        let window = &credit[port * 8..(port + 1) * 8];
        let can_send = n.add_gate(GateKind::Or, window, format!("can{port}"))?;
        n.mark_output(can_send);
        let low = n.add_gate(GateKind::Nor, &window[4..], format!("low{port}"))?;
        n.mark_output(low);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_build_and_validate() {
        for (name, f) in [
            ("arbiter", arbiter_like as fn() -> Result<Network>),
            ("cavlc", cavlc_like),
            ("ctrl", ctrl_like),
            ("dec", dec),
            ("i2c", i2c_like),
            ("int2float", int2float),
            ("priority", priority_like),
            ("router", router_like),
        ] {
            let n = f().unwrap_or_else(|e| panic!("{name}: {e}"));
            n.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn dec_profile_and_onehot() {
        let n = dec().unwrap();
        assert_eq!(n.num_inputs(), 8);
        assert_eq!(n.num_outputs(), 256);
        for v in [0usize, 1, 85, 170, 255] {
            let vals: Vec<bool> = (0..8).map(|i| v >> i & 1 == 1).collect();
            let out = n.simulate(&vals).unwrap();
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == v, "v={v} out{i}");
            }
        }
    }

    #[test]
    fn priority_profile_and_function() {
        let n = priority_like().unwrap();
        assert_eq!(n.num_inputs(), 128);
        assert_eq!(n.num_outputs(), 8);
        let mut vals = vec![false; 128];
        vals[100] = true;
        vals[37] = true;
        let out = n.simulate(&vals).unwrap();
        let idx: usize = (0..7).map(|i| (out[i] as usize) << i).sum();
        assert_eq!(idx, 37, "lowest index wins");
        assert!(out[7], "valid");
        let out = n.simulate(&[false; 128]).unwrap();
        assert!(!out[7]);
    }

    #[test]
    fn int2float_profile_and_samples() {
        let n = int2float().unwrap();
        assert_eq!(n.num_inputs(), 11);
        assert_eq!(n.num_outputs(), 7);
        let run = |v: i32| -> (bool, usize, usize) {
            let enc = (v & 0x7FF) as usize;
            let vals: Vec<bool> = (0..11).map(|i| enc >> i & 1 == 1).collect();
            let out = n.simulate(&vals).unwrap();
            let exp: usize = (0..4).map(|i| (out[1 + i] as usize) << i).sum();
            let man: usize = (0..2).map(|i| (out[5 + i] as usize) << i).sum();
            (out[0], exp, man)
        };
        // 6 = 0b110 -> leading one at position 2, mantissa = bits {1,0} = 0b10.
        assert_eq!(run(6), (false, 2, 0b10));
        // 1 -> exponent 0.
        assert_eq!(run(1), (false, 0, 0));
        // -6 -> same magnitude with sign set.
        assert_eq!(run(-6), (true, 2, 0b10));
        // 512 = 2^9.
        assert_eq!(run(512), (false, 9, 0));
    }

    #[test]
    fn arbiter_round_robin_rotates() {
        let n = arbiter_like().unwrap();
        // Requests at 3 and 10; pointer at 5 -> grant 10; pointer at 0 -> grant 3.
        let mut base = vec![false; 24 + 5];
        base[3] = true;
        base[10] = true;
        let mut at5 = base.clone();
        at5[24] = true; // ptr bit0
        at5[26] = true; // ptr bit2 -> 5
        let out = n.simulate(&at5).unwrap();
        assert!(out[10] && !out[3], "pointer 5 grants 10");
        let out = n.simulate(&base).unwrap();
        assert!(out[3] && !out[10], "pointer 0 grants 3");
        assert!(out[24], "any");
        // Exactly one grant whenever any request is set.
        assert_eq!(out[..24].iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn ctrl_decodes_classes() {
        let n = ctrl_like().unwrap();
        assert_eq!(n.num_inputs(), 7);
        assert_eq!(n.num_outputs(), 26);
        // Load opcode: class 0b010 on top bits -> reg_write & mem_read, !mem_write.
        let op = 0b010_0000usize;
        let vals: Vec<bool> = (0..7).map(|i| op >> i & 1 == 1).collect();
        let out = n.simulate(&vals).unwrap();
        assert!(out[0], "reg_write");
        assert!(out[1], "mem_read");
        assert!(!out[2], "mem_write");
    }

    #[test]
    fn router_longest_prefix_wins() {
        let n = router_like().unwrap();
        // Inputs: dst(8), valid, pay(16), credit(32).
        let run = |dest: usize, valid: bool| {
            let mut vals: Vec<bool> = (0..8).map(|i| dest >> i & 1 == 1).collect();
            vals.push(valid);
            vals.extend(std::iter::repeat_n(true, 16)); // payload
            vals.extend(std::iter::repeat_n(false, 32)); // no credits
            n.simulate(&vals).unwrap()
        };
        // dest = 0xAB matches entry 0 exactly (and entry 1 on its top 6
        // bits); the longest prefix must win.
        let out = run(0xAB, true);
        assert!(out[0], "hit");
        assert!(out[1], "port0 (longest prefix)");
        assert!(!out[2] && !out[3] && !out[4]);
        assert!(out[5..21].iter().all(|&b| b), "payload forwarded");
        // dest = 0xA9 matches only entry 1's top 6 bits (0xA8 >> 2).
        let out = run(0xA9, true);
        assert!(out[0], "hit");
        assert!(out[2], "port1");
        assert!(!out[1]);
        // valid low blocks everything.
        let out = run(0xAB, false);
        assert!(!out[0]);
        assert!(out[1..5].iter().all(|&b| !b));
        assert!(out[5..21].iter().all(|&b| !b));
        // No credits: every can_send low, every low-water high.
        assert!(out[21..29].chunks(2).all(|pair| !pair[0] && pair[1]));
    }

    #[test]
    fn cavlc_is_deterministic() {
        let a = cavlc_like().unwrap();
        let b = cavlc_like().unwrap();
        for v in [0usize, 1, 513, 1023] {
            let vals: Vec<bool> = (0..10).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(a.simulate(&vals).unwrap(), b.simulate(&vals).unwrap());
        }
        assert_eq!(a.num_inputs(), 10);
        assert_eq!(a.num_outputs(), 11);
    }

    #[test]
    fn i2c_counter_increments() {
        let n = i2c_like().unwrap();
        // Locate the counter inputs/outputs by their known positions:
        // inputs: st(6) cnt(4) dat(8) adr(8) own(8) ctl(6) en(20) = 60.
        assert_eq!(n.num_inputs(), 60);
        let mut vals = vec![false; 60];
        // cnt = 0b0111 -> next 0b1000.
        vals[6] = true;
        vals[7] = true;
        vals[8] = true;
        let out = n.simulate(&vals).unwrap();
        // Outputs: addr_match, go, stop, next_st(6), cnt_n(4), ...
        let cnt_next: usize = (0..4).map(|i| (out[9 + i] as usize) << i).sum();
        assert_eq!(cnt_next, 0b1000);
    }
}

//! Reusable datapath building blocks for the benchmark generators.
//!
//! All helpers take `&mut Network` plus already-created nets and append
//! gates; top-level circuit builders live in the sibling modules. Buses are
//! little-endian: index 0 is the least significant bit.

use crate::{GateKind, NetId, Network, Result};

/// Creates `width` primary inputs named `prefix0..prefix{width-1}`.
pub fn input_bus(n: &mut Network, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| n.add_input(format!("{prefix}{i}")))
        .collect()
}

/// Creates two buses with *interleaved* creation order (`a0 b0 a1 b1 …`),
/// which doubles as a good static BDD variable order for adders and
/// comparators.
pub fn interleaved_input_buses(
    n: &mut Network,
    pa: &str,
    pb: &str,
    width: usize,
) -> (Vec<NetId>, Vec<NetId>) {
    let mut a = Vec::with_capacity(width);
    let mut b = Vec::with_capacity(width);
    for i in 0..width {
        a.push(n.add_input(format!("{pa}{i}")));
        b.push(n.add_input(format!("{pb}{i}")));
    }
    (a, b)
}

/// One-bit full adder; returns `(sum, carry_out)`.
pub fn full_adder(
    n: &mut Network,
    a: NetId,
    b: NetId,
    cin: NetId,
    tag: &str,
) -> Result<(NetId, NetId)> {
    let s = n.add_gate(GateKind::Xor, &[a, b, cin], format!("{tag}_s"))?;
    let ab = n.add_gate(GateKind::And, &[a, b], format!("{tag}_ab"))?;
    let ac = n.add_gate(GateKind::And, &[a, cin], format!("{tag}_ac"))?;
    let bc = n.add_gate(GateKind::And, &[b, cin], format!("{tag}_bc"))?;
    let c = n.add_gate(GateKind::Or, &[ab, ac, bc], format!("{tag}_c"))?;
    Ok((s, c))
}

/// Ripple-carry adder over equal-width buses; returns `(sum_bus, carry_out)`.
///
/// # Panics
///
/// Panics if the buses have different widths or are empty.
pub fn ripple_adder(
    n: &mut Network,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
    tag: &str,
) -> Result<(Vec<NetId>, NetId)> {
    assert_eq!(a.len(), b.len(), "adder bus width mismatch");
    assert!(!a.is_empty(), "adder needs at least one bit");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let (s, c) = full_adder(n, ai, bi, carry, &format!("{tag}{i}"))?;
        sum.push(s);
        carry = c;
    }
    Ok((sum, carry))
}

/// Two's-complement subtractor (`a - b`); returns `(difference, borrow_free)`.
/// `borrow_free` (the adder's carry out) is 1 when `a >= b` for unsigned
/// operands.
pub fn ripple_subtractor(
    n: &mut Network,
    a: &[NetId],
    b: &[NetId],
    tag: &str,
) -> Result<(Vec<NetId>, NetId)> {
    let nb: Vec<NetId> = b
        .iter()
        .enumerate()
        .map(|(i, &bi)| n.add_gate(GateKind::Not, &[bi], format!("{tag}_nb{i}")))
        .collect::<Result<_>>()?;
    let one = n.add_const1(format!("{tag}_one"));
    ripple_adder(n, a, &nb, one, tag)
}

/// Equality comparator over equal-width buses.
///
/// # Panics
///
/// Panics if the buses have different widths or are empty.
pub fn equality(n: &mut Network, a: &[NetId], b: &[NetId], tag: &str) -> Result<NetId> {
    assert_eq!(a.len(), b.len(), "comparator bus width mismatch");
    assert!(!a.is_empty(), "comparator needs at least one bit");
    let eqs: Vec<NetId> = a
        .iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&ai, &bi))| n.add_gate(GateKind::Xnor, &[ai, bi], format!("{tag}_eq{i}")))
        .collect::<Result<_>>()?;
    if eqs.len() == 1 {
        Ok(eqs[0])
    } else {
        n.add_gate(GateKind::And, &eqs, format!("{tag}_eq"))
    }
}

/// Unsigned magnitude comparator; returns `(a_lt_b, a_eq_b, a_gt_b)`.
pub fn magnitude_compare(
    n: &mut Network,
    a: &[NetId],
    b: &[NetId],
    tag: &str,
) -> Result<(NetId, NetId, NetId)> {
    assert_eq!(a.len(), b.len(), "comparator bus width mismatch");
    // Ripple from LSB: lt_i = (!a_i & b_i) | (a_i==b_i) & lt_{i-1}
    let mut lt = n.add_const0(format!("{tag}_lt_init"));
    let mut gt = n.add_const0(format!("{tag}_gt_init"));
    for (i, (&ai, &bi)) in a.iter().zip(b).enumerate() {
        let na = n.add_gate(GateKind::Not, &[ai], format!("{tag}_na{i}"))?;
        let nb = n.add_gate(GateKind::Not, &[bi], format!("{tag}_nbc{i}"))?;
        let a_lt = n.add_gate(GateKind::And, &[na, bi], format!("{tag}_abl{i}"))?;
        let a_gt = n.add_gate(GateKind::And, &[ai, nb], format!("{tag}_abg{i}"))?;
        let eq = n.add_gate(GateKind::Xnor, &[ai, bi], format!("{tag}_abe{i}"))?;
        let keep_lt = n.add_gate(GateKind::And, &[eq, lt], format!("{tag}_kl{i}"))?;
        let keep_gt = n.add_gate(GateKind::And, &[eq, gt], format!("{tag}_kg{i}"))?;
        lt = n.add_gate(GateKind::Or, &[a_lt, keep_lt], format!("{tag}_lt{i}"))?;
        gt = n.add_gate(GateKind::Or, &[a_gt, keep_gt], format!("{tag}_gt{i}"))?;
    }
    let ne = n.add_gate(GateKind::Or, &[lt, gt], format!("{tag}_ne"))?;
    let eq = n.add_gate(GateKind::Not, &[ne], format!("{tag}_eqf"))?;
    Ok((lt, eq, gt))
}

/// Bitwise 2:1 mux over buses: `sel ? a : b`.
///
/// # Panics
///
/// Panics if the buses have different widths.
pub fn mux_bus(
    n: &mut Network,
    sel: NetId,
    a: &[NetId],
    b: &[NetId],
    tag: &str,
) -> Result<Vec<NetId>> {
    assert_eq!(a.len(), b.len(), "mux bus width mismatch");
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&ai, &bi))| n.add_gate(GateKind::Mux, &[sel, ai, bi], format!("{tag}{i}")))
        .collect()
}

/// Balanced XOR (parity) tree over a bus.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn parity_tree(n: &mut Network, bits: &[NetId], tag: &str) -> Result<NetId> {
    assert!(!bits.is_empty(), "parity needs at least one bit");
    if bits.len() == 1 {
        return Ok(bits[0]);
    }
    n.add_gate(GateKind::Xor, bits, tag)
}

/// `k`-to-`2^k` one-hot decoder with optional enable; output `i` is 1 iff the
/// select bus encodes `i` (and `enable`, when given, is 1).
pub fn decoder(
    n: &mut Network,
    sel: &[NetId],
    enable: Option<NetId>,
    tag: &str,
) -> Result<Vec<NetId>> {
    let k = sel.len();
    let nsel: Vec<NetId> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| n.add_gate(GateKind::Not, &[s], format!("{tag}_ns{i}")))
        .collect::<Result<_>>()?;
    let mut outs = Vec::with_capacity(1 << k);
    for v in 0..1usize << k {
        let mut lits: Vec<NetId> = (0..k)
            .map(|i| if v >> i & 1 == 1 { sel[i] } else { nsel[i] })
            .collect();
        if let Some(en) = enable {
            lits.push(en);
        }
        let out = match lits.len() {
            1 => n.add_gate(GateKind::Buf, &[lits[0]], format!("{tag}_d{v}"))?,
            _ => n.add_gate(GateKind::And, &lits, format!("{tag}_d{v}"))?,
        };
        outs.push(out);
    }
    Ok(outs)
}

/// Priority encoder: given `req` (index 0 has the *highest* priority),
/// returns `(index_bits, valid)` where `index_bits` is the binary index of
/// the highest-priority asserted request.
pub fn priority_encoder(n: &mut Network, req: &[NetId], tag: &str) -> Result<(Vec<NetId>, NetId)> {
    assert!(
        !req.is_empty(),
        "priority encoder needs at least one request"
    );
    let width = req.len();
    let bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let bits = bits.max(1);
    // grant[i] = req[i] & !req[0..i]
    let mut grants = Vec::with_capacity(width);
    let mut none_above = n.add_const1(format!("{tag}_na0"));
    for (i, &r) in req.iter().enumerate() {
        let g = n.add_gate(GateKind::And, &[r, none_above], format!("{tag}_g{i}"))?;
        grants.push(g);
        if i + 1 < width {
            let nr = n.add_gate(GateKind::Not, &[r], format!("{tag}_nr{i}"))?;
            none_above = n.add_gate(
                GateKind::And,
                &[none_above, nr],
                format!("{tag}_na{}", i + 1),
            )?;
        }
    }
    // Encode the one-hot grants.
    let mut index = Vec::with_capacity(bits);
    for b in 0..bits {
        let members: Vec<NetId> = grants
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> b & 1 == 1)
            .map(|(_, &g)| g)
            .collect();
        let bit = match members.len() {
            0 => n.add_const0(format!("{tag}_i{b}")),
            1 => n.add_gate(GateKind::Buf, &[members[0]], format!("{tag}_i{b}"))?,
            _ => n.add_gate(GateKind::Or, &members, format!("{tag}_i{b}"))?,
        };
        index.push(bit);
    }
    let valid = n.add_gate(GateKind::Or, req, format!("{tag}_valid"))?;
    Ok((index, valid))
}

/// Leading-one detector over a bus (MSB side wins): returns a one-hot bus of
/// the same width marking the most significant asserted bit.
pub fn leading_one(n: &mut Network, bits: &[NetId], tag: &str) -> Result<Vec<NetId>> {
    // Reuse the priority encoder's grant chain with reversed significance.
    let rev: Vec<NetId> = bits.iter().rev().copied().collect();
    let width = rev.len();
    let mut outs = vec![None; width];
    let mut none_above = n.add_const1(format!("{tag}_lo_na0"));
    for (i, &r) in rev.iter().enumerate() {
        let g = n.add_gate(GateKind::And, &[r, none_above], format!("{tag}_lo{i}"))?;
        outs[width - 1 - i] = Some(g);
        if i + 1 < width {
            let nr = n.add_gate(GateKind::Not, &[r], format!("{tag}_lonr{i}"))?;
            none_above = n.add_gate(
                GateKind::And,
                &[none_above, nr],
                format!("{tag}_lo_na{}", i + 1),
            )?;
        }
    }
    Ok(outs.into_iter().map(|o| o.expect("filled")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;

    fn bits_of(v: usize, w: usize) -> Vec<bool> {
        (0..w).map(|i| v >> i & 1 == 1).collect()
    }

    fn val_of(bits: &[bool]) -> usize {
        bits.iter()
            .enumerate()
            .map(|(i, &b)| (b as usize) << i)
            .sum()
    }

    #[test]
    fn adder_is_exact_4bit() {
        let mut n = Network::new("add4");
        let (a, b) = interleaved_input_buses(&mut n, "a", "b", 4);
        let cin = n.add_input("cin");
        let (sum, cout) = ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
        for s in sum {
            n.mark_output(s);
        }
        n.mark_output(cout);
        for av in 0..16usize {
            for bv in 0..16usize {
                for c in 0..2usize {
                    let mut vals = Vec::new();
                    for i in 0..4 {
                        vals.push(av >> i & 1 == 1);
                        vals.push(bv >> i & 1 == 1);
                    }
                    vals.push(c == 1);
                    let out = n.simulate(&vals).unwrap();
                    let got = val_of(&out);
                    assert_eq!(got, av + bv + c, "{av}+{bv}+{c}");
                }
            }
        }
    }

    #[test]
    fn subtractor_computes_difference_and_geq() {
        let mut n = Network::new("sub4");
        let a = input_bus(&mut n, "a", 4);
        let b = input_bus(&mut n, "b", 4);
        let (diff, geq) = ripple_subtractor(&mut n, &a, &b, "sub").unwrap();
        for d in diff {
            n.mark_output(d);
        }
        n.mark_output(geq);
        for av in 0..16usize {
            for bv in 0..16usize {
                let mut vals = bits_of(av, 4);
                vals.extend(bits_of(bv, 4));
                let out = n.simulate(&vals).unwrap();
                let d = val_of(&out[..4]);
                assert_eq!(d, (av.wrapping_sub(bv)) & 0xF, "{av}-{bv}");
                assert_eq!(out[4], av >= bv, "geq {av} {bv}");
            }
        }
    }

    #[test]
    fn comparator_trichotomy() {
        let mut n = Network::new("cmp3");
        let a = input_bus(&mut n, "a", 3);
        let b = input_bus(&mut n, "b", 3);
        let (lt, eq, gt) = magnitude_compare(&mut n, &a, &b, "cmp").unwrap();
        n.mark_output(lt);
        n.mark_output(eq);
        n.mark_output(gt);
        for av in 0..8usize {
            for bv in 0..8usize {
                let mut vals = bits_of(av, 3);
                vals.extend(bits_of(bv, 3));
                let out = n.simulate(&vals).unwrap();
                assert_eq!(out, vec![av < bv, av == bv, av > bv], "{av} vs {bv}");
                assert_eq!(out.iter().filter(|&&b| b).count(), 1);
            }
        }
    }

    #[test]
    fn equality_matches_compare() {
        let mut n = Network::new("eq4");
        let a = input_bus(&mut n, "a", 4);
        let b = input_bus(&mut n, "b", 4);
        let eq = equality(&mut n, &a, &b, "e").unwrap();
        n.mark_output(eq);
        for av in 0..16usize {
            for bv in 0..16usize {
                let mut vals = bits_of(av, 4);
                vals.extend(bits_of(bv, 4));
                assert_eq!(n.simulate(&vals).unwrap()[0], av == bv);
            }
        }
    }

    #[test]
    fn decoder_is_onehot() {
        let mut n = Network::new("dec3");
        let sel = input_bus(&mut n, "s", 3);
        let en = n.add_input("en");
        let outs = decoder(&mut n, &sel, Some(en), "d").unwrap();
        assert_eq!(outs.len(), 8);
        for o in outs {
            n.mark_output(o);
        }
        for v in 0..8usize {
            for en_v in [false, true] {
                let mut vals = bits_of(v, 3);
                vals.push(en_v);
                let out = n.simulate(&vals).unwrap();
                for (i, &bit) in out.iter().enumerate() {
                    assert_eq!(bit, en_v && i == v, "v={v} en={en_v} out{i}");
                }
            }
        }
    }

    #[test]
    fn priority_encoder_picks_lowest_index() {
        let mut n = Network::new("pe5");
        let req = input_bus(&mut n, "r", 5);
        let (idx, valid) = priority_encoder(&mut n, &req, "pe").unwrap();
        assert_eq!(idx.len(), 3);
        for b in idx {
            n.mark_output(b);
        }
        n.mark_output(valid);
        for v in 0..32usize {
            let vals = bits_of(v, 5);
            let out = n.simulate(&vals).unwrap();
            let expected = (0..5).find(|&i| v >> i & 1 == 1);
            match expected {
                None => assert!(!out[3], "valid must be low for {v:05b}"),
                Some(first) => {
                    assert!(out[3]);
                    assert_eq!(val_of(&out[..3]), first, "{v:05b}");
                }
            }
        }
    }

    #[test]
    fn leading_one_marks_msb() {
        let mut n = Network::new("lo4");
        let bits = input_bus(&mut n, "x", 4);
        let lo = leading_one(&mut n, &bits, "lo").unwrap();
        for o in lo {
            n.mark_output(o);
        }
        for v in 0..16usize {
            let out = n.simulate(&bits_of(v, 4)).unwrap();
            let expected = (0..4).rev().find(|&i| v >> i & 1 == 1);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, Some(i) == expected, "v={v:04b} bit{i}");
            }
        }
    }

    #[test]
    fn mux_bus_selects() {
        let mut n = Network::new("mux");
        let sel = n.add_input("s");
        let a = input_bus(&mut n, "a", 3);
        let b = input_bus(&mut n, "b", 3);
        let m = mux_bus(&mut n, sel, &a, &b, "m").unwrap();
        for o in m {
            n.mark_output(o);
        }
        let mut vals = vec![true];
        vals.extend([true, false, true]);
        vals.extend([false, true, false]);
        assert_eq!(n.simulate(&vals).unwrap(), vec![true, false, true]);
        vals[0] = false;
        assert_eq!(n.simulate(&vals).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn parity_tree_matches_popcount() {
        let mut n = Network::new("par6");
        let bits = input_bus(&mut n, "x", 6);
        let p = parity_tree(&mut n, &bits, "p").unwrap();
        n.mark_output(p);
        for v in 0..64usize {
            assert_eq!(
                n.simulate(&bits_of(v, 6)).unwrap()[0],
                v.count_ones() % 2 == 1
            );
        }
    }
}

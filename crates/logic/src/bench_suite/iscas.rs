//! ISCAS85-like benchmark circuits.
//!
//! The original ISCAS85 netlists are not redistributable here, so each
//! generator builds a circuit of the same *kind* (and comparable I/O
//! profile) as its namesake: c432 is a 27-channel interrupt arbiter, c499 and
//! c1355 are 32-bit single-error-correction circuits, c880/c3540 are ALUs,
//! c1908 is a SEC/DED circuit, c2670/c5315 are ALU-plus-selector designs, and
//! c7552 is an adder/comparator. Widths are scaled so that the resulting
//! BDDs span the small-to-hard range the paper's evaluation covers (see
//! DESIGN.md §3 for the substitution rationale).

use super::blocks::*;
use crate::{GateKind, NetId, Network, Result};

/// c432-like: 27-channel interrupt arbiter (9 groups of 3 requests with
/// group masks), priority-encoded grant index plus status flags. Inputs are
/// created group-by-group (requests then their mask) so the default BDD
/// variable order keeps the priority chain local.
pub fn c432_like() -> Result<Network> {
    let mut n = Network::new("c432_like");
    let mut req = Vec::with_capacity(27);
    let mut mask = Vec::with_capacity(9);
    for g in 0..9 {
        for i in 0..3 {
            req.push(n.add_input(format!("req{}", g * 3 + i)));
        }
        mask.push(n.add_input(format!("mask{g}")));
    }
    // Masked requests: request i is enabled by its group mask.
    let masked: Vec<NetId> = req
        .iter()
        .enumerate()
        .map(|(i, &r)| {
            let m = mask[i / 3];
            n.add_gate(GateKind::And, &[r, m], format!("mreq{i}"))
        })
        .collect::<Result<_>>()?;
    let (idx, valid) = priority_encoder(&mut n, &masked, "pe")?;
    for b in &idx {
        n.mark_output(*b);
    }
    n.mark_output(valid);
    let par = parity_tree(&mut n, &masked, "par")?;
    n.mark_output(par);
    Ok(n)
}

/// Shared structure of the c499/c1355-like SEC circuits: `data_bits` data
/// inputs and `check_bits` stored check inputs; outputs are the corrected
/// data word. When `nand_style` is set, XOR gates are decomposed into NAND
/// networks (c1355 is the NAND-expanded version of c499 — same function).
fn sec_circuit(
    name: &str,
    data_bits: usize,
    check_bits: usize,
    nand_style: bool,
) -> Result<Network> {
    let mut n = Network::new(name);
    let data = input_bus(&mut n, "d", data_bits);
    let check = input_bus(&mut n, "c", check_bits);

    let xor2 = |n: &mut Network, a: NetId, b: NetId, tag: String| -> Result<NetId> {
        if nand_style {
            // XOR via four NANDs, as in the NAND-only c1355 netlist.
            let m = n.add_gate(GateKind::Nand, &[a, b], format!("{tag}_m"))?;
            let l = n.add_gate(GateKind::Nand, &[a, m], format!("{tag}_l"))?;
            let r = n.add_gate(GateKind::Nand, &[b, m], format!("{tag}_r"))?;
            n.add_gate(GateKind::Nand, &[l, r], tag)
        } else {
            n.add_gate(GateKind::Xor, &[a, b], tag)
        }
    };

    // Syndrome bit j: parity of the data bits whose (1-based) Hamming
    // position has bit j set, XOR the stored check bit.
    let mut syndrome = Vec::with_capacity(check_bits);
    for (j, &check_j) in check.iter().enumerate() {
        let members: Vec<NetId> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| (i + 1) >> j & 1 == 1)
            .map(|(_, &d)| d)
            .collect();
        let mut acc = check_j;
        for (k, &m) in members.iter().enumerate() {
            acc = xor2(&mut n, acc, m, format!("s{j}_{k}"))?;
        }
        syndrome.push(acc);
    }

    // Corrected data: flip bit i when the syndrome equals i+1.
    let nsyn: Vec<NetId> = syndrome
        .iter()
        .enumerate()
        .map(|(j, &s)| n.add_gate(GateKind::Not, &[s], format!("nsyn{j}")))
        .collect::<Result<_>>()?;
    for (i, &d) in data.iter().enumerate() {
        let code = i + 1;
        let lits: Vec<NetId> = (0..check_bits)
            .map(|j| {
                if code >> j & 1 == 1 {
                    syndrome[j]
                } else {
                    nsyn[j]
                }
            })
            .collect();
        let hit = n.add_gate(GateKind::And, &lits, format!("hit{i}"))?;
        let corrected = xor2(&mut n, d, hit, format!("out{i}"))?;
        n.mark_output(corrected);
    }
    Ok(n)
}

/// c499-like: single-error-correction circuit (XOR-tree style). XOR-dominated
/// logic makes this one of the hard instances, as in the paper.
pub fn c499_like() -> Result<Network> {
    sec_circuit("c499_like", 16, 5, false)
}

/// c1355-like: functionally identical to [`c499_like`] but NAND-expanded, so
/// the BDD (and therefore every COMPACT result) matches c499's — mirroring
/// the identical rows the paper reports for c499/c1355.
pub fn c1355_like() -> Result<Network> {
    sec_circuit("c1355_like", 16, 5, true)
}

/// An `width`-bit ALU slice: op selects among add, sub, and, or, xor, nor,
/// pass-a, pass-b; returns (result bus, carry flag).
fn alu(
    n: &mut Network,
    a: &[NetId],
    b: &[NetId],
    op: &[NetId],
    cin: NetId,
    tag: &str,
) -> Result<(Vec<NetId>, NetId)> {
    assert_eq!(op.len(), 3, "alu expects a 3-bit opcode");
    let (sum, cout) = ripple_adder(n, a, b, cin, &format!("{tag}_add"))?;
    let (diff, bout) = ripple_subtractor(n, a, b, &format!("{tag}_sub"))?;
    let width = a.len();
    let mut res = Vec::with_capacity(width);
    for i in 0..width {
        let and_i = n.add_gate(GateKind::And, &[a[i], b[i]], format!("{tag}_and{i}"))?;
        let or_i = n.add_gate(GateKind::Or, &[a[i], b[i]], format!("{tag}_or{i}"))?;
        let xor_i = n.add_gate(GateKind::Xor, &[a[i], b[i]], format!("{tag}_xor{i}"))?;
        let nor_i = n.add_gate(GateKind::Nor, &[a[i], b[i]], format!("{tag}_nor{i}"))?;
        // 8:1 select tree over op bits.
        let m0 = n.add_gate(
            GateKind::Mux,
            &[op[0], diff[i], sum[i]],
            format!("{tag}_m0_{i}"),
        )?;
        let m1 = n.add_gate(
            GateKind::Mux,
            &[op[0], or_i, and_i],
            format!("{tag}_m1_{i}"),
        )?;
        let m2 = n.add_gate(
            GateKind::Mux,
            &[op[0], nor_i, xor_i],
            format!("{tag}_m2_{i}"),
        )?;
        let m3 = n.add_gate(GateKind::Mux, &[op[0], b[i], a[i]], format!("{tag}_m3_{i}"))?;
        let m01 = n.add_gate(GateKind::Mux, &[op[1], m1, m0], format!("{tag}_m01_{i}"))?;
        let m23 = n.add_gate(GateKind::Mux, &[op[1], m3, m2], format!("{tag}_m23_{i}"))?;
        let r = n.add_gate(GateKind::Mux, &[op[2], m23, m01], format!("{tag}_r{i}"))?;
        res.push(r);
    }
    let carry = n.add_gate(GateKind::Mux, &[op[0], bout, cout], format!("{tag}_carry"))?;
    Ok((res, carry))
}

/// c880-like: 8-bit ALU plus an independent byte comparator/selector section.
pub fn c880_like() -> Result<Network> {
    let mut n = Network::new("c880_like");
    let (a, b) = interleaved_input_buses(&mut n, "a", "b", 8);
    let op = input_bus(&mut n, "op", 3);
    let cin = n.add_input("cin");
    let (c, d) = interleaved_input_buses(&mut n, "c", "d", 8);
    let (res, carry) = alu(&mut n, &a, &b, &op, cin, "alu")?;
    let zero_terms: Vec<NetId> = res.clone();
    let zero = n.add_gate(GateKind::Nor, &zero_terms, "zero")?;
    for r in &res {
        n.mark_output(*r);
    }
    n.mark_output(carry);
    n.mark_output(zero);
    let (lt, eq, gt) = magnitude_compare(&mut n, &c, &d, "cmp")?;
    n.mark_output(lt);
    n.mark_output(eq);
    n.mark_output(gt);
    let sel = n.add_gate(GateKind::Or, &[lt, eq], "sel")?;
    let picked = mux_bus(&mut n, sel, &c, &d, "pick")?;
    for p in picked {
        n.mark_output(p);
    }
    let par = parity_tree(&mut n, &res, "rpar")?;
    n.mark_output(par);
    Ok(n)
}

/// c1908-like: 16-bit SEC/DED — single-error correction with an added
/// double-error-detection parity check.
pub fn c1908_like() -> Result<Network> {
    let mut n = sec_circuit("c1908_like", 16, 5, false)?;
    // Overall parity input covers data + checks; double error when the
    // syndrome is nonzero but overall parity matches.
    let overall = n.add_input("p_all");
    let data: Vec<NetId> = (0..16)
        .map(|i| n.find_net(&format!("d{i}")).expect("data net"))
        .collect();
    let checks: Vec<NetId> = (0..5)
        .map(|j| n.find_net(&format!("c{j}")).expect("check net"))
        .collect();
    let mut all = data;
    all.extend(checks);
    all.push(overall);
    let total_par = parity_tree(&mut n, &all, "tp")?;
    let syndromes: Vec<NetId> = (0..5)
        .map(|j| n.find_net(&format!("nsyn{j}")).expect("syndrome net"))
        .collect();
    let syn_zero = n.add_gate(GateKind::And, &syndromes, "syn_zero")?;
    let syn_nonzero = n.add_gate(GateKind::Not, &[syn_zero], "syn_nz")?;
    let even = n.add_gate(GateKind::Not, &[total_par], "even")?;
    let double_err = n.add_gate(GateKind::And, &[syn_nonzero, even], "derr")?;
    let single_err = n.add_gate(GateKind::And, &[syn_nonzero, total_par], "serr")?;
    n.mark_output(single_err);
    n.mark_output(double_err);
    Ok(n)
}

/// c2670-like: wide but shallow ALU-and-selector control, dominated by
/// per-bit multiplexers plus one long comparator chain.
pub fn c2670_like() -> Result<Network> {
    let mut n = Network::new("c2670_like");
    let (a, b) = interleaved_input_buses(&mut n, "a", "b", 48);
    let sel_ext = n.add_input("sel_ext");
    let en = n.add_input("en");
    let (lt, eq, gt) = magnitude_compare(&mut n, &a, &b, "cmp")?;
    let sel = n.add_gate(GateKind::Or, &[lt, sel_ext], "sel")?;
    let picked = mux_bus(&mut n, sel, &a, &b, "pick")?;
    for p in &picked {
        let gated = n.add_gate(GateKind::And, &[*p, en], format!("g_{}", n.net_name(*p)))?;
        n.mark_output(gated);
    }
    n.mark_output(lt);
    n.mark_output(eq);
    n.mark_output(gt);
    // A bank of independent small functions (shallow cones, like the real
    // circuit's scattered control logic).
    let k = input_bus(&mut n, "k", 24);
    for w in k.chunks(3) {
        let f = n.add_gate(GateKind::Mux, &[w[0], w[1], w[2]], "kmux")?;
        n.mark_output(f);
    }
    Ok(n)
}

/// c3540-like: 8-bit ALU with mask and mode inputs (richer opcode space than
/// [`c880_like`]).
pub fn c3540_like() -> Result<Network> {
    let mut n = Network::new("c3540_like");
    let op = input_bus(&mut n, "op", 3);
    let mode = n.add_input("mode");
    let cin = n.add_input("cin");
    // Interleave a/b/mask per bit so the masked ripple adder stays local in
    // the default variable order.
    let mut a = Vec::with_capacity(8);
    let mut b = Vec::with_capacity(8);
    let mut mask = Vec::with_capacity(8);
    for i in 0..8 {
        a.push(n.add_input(format!("a{i}")));
        b.push(n.add_input(format!("b{i}")));
        mask.push(n.add_input(format!("m{i}")));
    }
    let masked_b: Vec<NetId> = b
        .iter()
        .zip(&mask)
        .enumerate()
        .map(|(i, (&bi, &mi))| {
            let am = n.add_gate(GateKind::And, &[bi, mi], format!("bm{i}"))?;
            n.add_gate(GateKind::Mux, &[mode, am, bi], format!("bmm{i}"))
        })
        .collect::<Result<_>>()?;
    let (res, carry) = alu(&mut n, &a, &masked_b, &op, cin, "alu")?;
    let zero = n.add_gate(GateKind::Nor, &res, "zero")?;
    let neg = n.add_gate(GateKind::Buf, &[res[7]], "neg")?;
    let par = parity_tree(&mut n, &res, "par")?;
    for r in res {
        n.mark_output(r);
    }
    n.mark_output(carry);
    n.mark_output(zero);
    n.mark_output(neg);
    n.mark_output(par);
    Ok(n)
}

/// c5315-like: four-way 24-bit bus selector plus a 9-bit adder and flags.
pub fn c5315_like() -> Result<Network> {
    let mut n = Network::new("c5315_like");
    let buses: Vec<Vec<NetId>> = (0..4)
        .map(|k| input_bus(&mut n, &format!("bus{k}_"), 24))
        .collect();
    let sel = input_bus(&mut n, "sel", 2);
    let m01 = mux_bus(&mut n, sel[0], &buses[1], &buses[0], "m01")?;
    let m23 = mux_bus(&mut n, sel[0], &buses[3], &buses[2], "m23")?;
    let m = mux_bus(&mut n, sel[1], &m23, &m01, "m")?;
    for o in &m {
        n.mark_output(*o);
    }
    let (x, y) = interleaved_input_buses(&mut n, "x", "y", 9);
    let cin = n.add_input("cin");
    let (sum, cout) = ripple_adder(&mut n, &x, &y, cin, "add")?;
    for s in &sum {
        n.mark_output(*s);
    }
    n.mark_output(cout);
    let zero = n.add_gate(GateKind::Nor, &sum, "zero")?;
    n.mark_output(zero);
    let eq = equality(&mut n, &buses[0][..9], &buses[1][..9], "eq")?;
    n.mark_output(eq);
    Ok(n)
}

/// c7552-like: 24-bit adder plus 24-bit magnitude comparator (the real c7552
/// is a 34-bit adder/comparator with parity checking).
pub fn c7552_like() -> Result<Network> {
    let mut n = Network::new("c7552_like");
    let (a, b) = interleaved_input_buses(&mut n, "a", "b", 24);
    let cin = n.add_input("cin");
    let (sum, cout) = ripple_adder(&mut n, &a, &b, cin, "add")?;
    for s in &sum {
        n.mark_output(*s);
    }
    n.mark_output(cout);
    let (c, d) = interleaved_input_buses(&mut n, "c", "d", 24);
    let (lt, eq, gt) = magnitude_compare(&mut n, &c, &d, "cmp")?;
    n.mark_output(lt);
    n.mark_output(eq);
    n.mark_output(gt);
    let par_a = parity_tree(&mut n, &a, "pa")?;
    let par_sum = parity_tree(&mut n, &sum, "ps")?;
    let par_ok = n.add_gate(GateKind::Xnor, &[par_a, par_sum], "par_ok")?;
    n.mark_output(par_ok);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_build_and_validate() {
        for (name, f) in [
            ("c432", c432_like as fn() -> Result<Network>),
            ("c499", c499_like),
            ("c880", c880_like),
            ("c1355", c1355_like),
            ("c1908", c1908_like),
            ("c2670", c2670_like),
            ("c3540", c3540_like),
            ("c5315", c5315_like),
            ("c7552", c7552_like),
        ] {
            let n = f().unwrap_or_else(|e| panic!("{name}: {e}"));
            n.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(n.num_inputs() > 0 && n.num_outputs() > 0, "{name}");
        }
    }

    /// Input position of request `j` in the c432-like interleaved layout
    /// (3 requests then their group mask, repeated).
    fn c432_req_pos(j: usize) -> usize {
        j + j / 3
    }

    /// Input position of group mask `g`.
    fn c432_mask_pos(g: usize) -> usize {
        4 * g + 3
    }

    #[test]
    fn c432_grants_highest_priority_enabled_channel() {
        let n = c432_like().unwrap();
        // Request only channel 5, all masks enabled.
        let mut vals = vec![false; 36];
        vals[c432_req_pos(5)] = true;
        for g in 0..9 {
            vals[c432_mask_pos(g)] = true;
        }
        let out = n.simulate(&vals).unwrap();
        let idx: usize = (0..5).map(|i| (out[i] as usize) << i).sum();
        assert_eq!(idx, 5);
        assert!(out[5], "valid");
    }

    #[test]
    fn c432_mask_blocks_requests() {
        let n = c432_like().unwrap();
        let mut vals = vec![false; 36];
        vals[c432_req_pos(5)] = true; // request channel 5, masks low
        let out = n.simulate(&vals).unwrap();
        assert!(!out[5], "grant must not fire with masks low");
    }

    #[test]
    fn sec_corrects_single_bit_errors() {
        let n = c499_like().unwrap();
        // Encode a word: data + correct check bits, then flip one data bit.
        let data_val: u16 = 0b1011_0010_1100_0101;
        let data: Vec<bool> = (0..16).map(|i| data_val >> i & 1 == 1).collect();
        let mut checks = vec![false; 5];
        for (j, c) in checks.iter_mut().enumerate() {
            *c = (0..16)
                .filter(|i| (i + 1) >> j & 1 == 1)
                .fold(false, |acc, i| acc ^ data[i]);
        }
        // Clean word decodes to itself.
        let mut vals = data.clone();
        vals.extend(&checks);
        assert_eq!(n.simulate(&vals).unwrap(), data);
        // Every single-bit data error is corrected.
        for flip in 0..16 {
            let mut corrupted = data.clone();
            corrupted[flip] = !corrupted[flip];
            let mut vals = corrupted;
            vals.extend(&checks);
            assert_eq!(n.simulate(&vals).unwrap(), data, "flip {flip}");
        }
    }

    #[test]
    fn c1355_matches_c499_functionally() {
        let a = c499_like().unwrap();
        let b = c1355_like().unwrap();
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.num_outputs(), b.num_outputs());
        // Spot-check a pseudorandom sample of assignments.
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let vals: Vec<bool> = (0..21).map(|i| x >> i & 1 == 1).collect();
            assert_eq!(a.simulate(&vals).unwrap(), b.simulate(&vals).unwrap());
        }
    }

    #[test]
    fn alu_opcodes() {
        let n = c880_like().unwrap();
        // Inputs: a/b interleaved (16), op (3), cin, c/d interleaved (16).
        let run = |av: u8, bv: u8, op: u8, cin: bool| -> (u8, bool) {
            let mut vals = Vec::new();
            for i in 0..8 {
                vals.push(av >> i & 1 == 1);
                vals.push(bv >> i & 1 == 1);
            }
            for i in 0..3 {
                vals.push(op >> i & 1 == 1);
            }
            vals.push(cin);
            vals.extend(std::iter::repeat_n(false, 16));
            let out = n.simulate(&vals).unwrap();
            let res: u8 = (0..8).map(|i| (out[i] as u8) << i).sum();
            (res, out[8])
        };
        // Opcode table (op2 op1 op0): 000 add, 001 sub, 010 and, 011 or,
        // 100 xor, 101 nor, 110 pass-a, 111 pass-b.
        assert_eq!(run(100, 55, 0b000, false), (155, false)); // add
        assert_eq!(run(200, 100, 0b001, false).0, 100); // sub
        assert_eq!(run(0b1100, 0b1010, 0b010, false).0, 0b1000); // and
        assert_eq!(run(0b1100, 0b1010, 0b011, false).0, 0b1110); // or
        assert_eq!(run(0b1100, 0b1010, 0b100, false).0, 0b0110); // xor
        assert_eq!(run(0xF0, 0x0F, 0b110, false).0, 0xF0); // pass a
        assert_eq!(run(0xF0, 0x0F, 0b111, false).0, 0x0F); // pass b
    }

    #[test]
    fn c7552_adds_and_compares() {
        let n = c7552_like().unwrap();
        let av: u32 = 0x00AB_CDEF & 0xFF_FFFF;
        let bv: u32 = 0x0012_3456;
        let cv: u32 = 500;
        let dv: u32 = 900;
        let mut vals = Vec::new();
        for i in 0..24 {
            vals.push(av >> i & 1 == 1);
            vals.push(bv >> i & 1 == 1);
        }
        vals.push(false); // cin
        for i in 0..24 {
            vals.push(cv >> i & 1 == 1);
            vals.push(dv >> i & 1 == 1);
        }
        let out = n.simulate(&vals).unwrap();
        let sum: u32 = (0..24).map(|i| (out[i] as u32) << i).sum();
        assert_eq!(sum, (av + bv) & 0xFF_FFFF);
        assert!(out[25], "lt");
        assert!(!out[26], "eq");
        assert!(!out[27], "gt");
    }
}

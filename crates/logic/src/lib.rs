//! Gate-level logic networks, truth tables, BLIF/PLA I/O, simulation, and
//! benchmark circuit generators.
//!
//! This crate is the logic-synthesis substrate of the COMPACT reproduction.
//! The original paper consumes circuits in Verilog/BLIF/PLA form and converts
//! them to BDDs with ABC/CUDD; here, [`Network`] plays the role of the parsed
//! circuit, [`blif`] and [`pla`] provide the file formats, and [`bench_suite`]
//! regenerates the ISCAS85-like and EPFL-control-like benchmark population the
//! paper evaluates on.
//!
//! # Quick example
//!
//! ```
//! use flowc_logic::{Network, GateKind};
//!
//! // f = (a AND b) OR c  — the running example of the paper (Fig. 2).
//! let mut n = Network::new("fig2");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
//! let f = n.add_gate(GateKind::Or, &[ab, c], "f").unwrap();
//! n.mark_output(f);
//!
//! assert_eq!(n.simulate(&[true, true, false]).unwrap(), vec![true]);
//! assert_eq!(n.simulate(&[false, true, false]).unwrap(), vec![false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod netlist;
mod sim;
mod truth;

pub mod bench_suite;
pub mod blif;
pub mod cube;
pub mod pla;
pub mod verilog;
pub mod xform;

pub use error::LogicError;
pub use netlist::{Gate, GateKind, Net, NetId, Network};
pub use truth::{TruthTable, MAX_TRUTH_VARS};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LogicError>;

use std::collections::HashMap;
use std::fmt;

use crate::{LogicError, Result};

/// Index of a net (a named wire) inside a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Returns the raw index of this net.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The primitive combinational gate kinds supported by [`Network`].
///
/// All multi-input kinds are n-ary (two or more inputs). `Buf` and `Not` take
/// exactly one input; `Const0`/`Const1` take none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum GateKind {
    /// Constant logic 0.
    Const0,
    /// Constant logic 1.
    Const1,
    /// Identity.
    Buf,
    /// Inverter.
    Not,
    /// n-ary conjunction.
    And,
    /// n-ary disjunction.
    Or,
    /// n-ary NAND.
    Nand,
    /// n-ary NOR.
    Nor,
    /// n-ary exclusive-or (odd parity).
    Xor,
    /// n-ary exclusive-nor (even parity).
    Xnor,
    /// 2:1 multiplexer: inputs are `[sel, then, else]`; output is `then` when
    /// `sel` is true and `else` otherwise.
    Mux,
}

impl GateKind {
    /// Short lowercase name of the gate kind (stable; used in BLIF comments
    /// and debug output).
    pub fn name(self) -> &'static str {
        match self {
            GateKind::Const0 => "const0",
            GateKind::Const1 => "const1",
            GateKind::Buf => "buf",
            GateKind::Not => "not",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux => "mux",
        }
    }

    /// Checks that `n` inputs is a legal arity for this kind.
    fn check_arity(self, n: usize) -> Result<()> {
        let (ok, expected) = match self {
            GateKind::Const0 | GateKind::Const1 => (n == 0, "exactly 0"),
            GateKind::Buf | GateKind::Not => (n == 1, "exactly 1"),
            GateKind::Mux => (n == 3, "exactly 3"),
            _ => (n >= 2, "at least 2"),
        };
        if ok {
            Ok(())
        } else {
            Err(LogicError::Arity {
                kind: self.name(),
                got: n,
                expected,
            })
        }
    }

    /// Evaluates the gate over boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` has an arity this kind does not accept; arity is
    /// validated at construction time by [`Network::add_gate`].
    pub fn eval(self, inputs: &[bool]) -> bool {
        match self {
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Mux => {
                if inputs[0] {
                    inputs[1]
                } else {
                    inputs[2]
                }
            }
        }
    }

    /// Evaluates the gate over 64 parallel boolean vectors packed in `u64`s.
    pub fn eval64(self, inputs: &[u64]) -> u64 {
        match self {
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &w| acc & w),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &w| acc ^ w),
            GateKind::Mux => (inputs[0] & inputs[1]) | (!inputs[0] & inputs[2]),
        }
    }
}

/// A combinational gate: a kind, ordered input nets, and one output net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The logic function of the gate.
    pub kind: GateKind,
    /// Ordered fan-in nets.
    pub inputs: Vec<NetId>,
    /// The single net driven by this gate.
    pub output: NetId,
}

/// A named wire in a [`Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    name: String,
}

impl Net {
    /// The net's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// What drives a net. Every net acquires its driver at creation, so the
/// network is driven-by-construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Driver {
    PrimaryInput,
    Gate(u32),
}

/// A combinational multi-input multi-output gate-level network.
///
/// Nets are created by [`Network::add_input`] and [`Network::add_gate`]; each
/// net has exactly one driver. Outputs are existing nets marked with
/// [`Network::mark_output`]. The network is always acyclic by construction
/// (gates may only reference already-created nets).
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    nets: Vec<Net>,
    drivers: Vec<Driver>,
    by_name: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    gates: Vec<Gate>,
}

impl Network {
    /// Creates an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            nets: Vec::new(),
            drivers: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn fresh_net(&mut self, name: impl Into<String>, driver: Driver) -> NetId {
        let mut name = name.into();
        if name.is_empty() || self.by_name.contains_key(&name) {
            // Uniquify silently: construction helpers frequently synthesize
            // names, and collisions there are not user errors.
            let base = if name.is_empty() {
                "_n".to_string()
            } else {
                name
            };
            let mut i = self.nets.len();
            loop {
                let candidate = format!("{base}_{i}");
                if !self.by_name.contains_key(&candidate) {
                    name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId(self.nets.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net { name });
        self.drivers.push(driver);
        id
    }

    /// Adds a primary input named `name` and returns its net.
    ///
    /// Name collisions are resolved by suffixing; use [`Network::find_net`]
    /// with the returned id's name if exact names matter.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.fresh_net(name, Driver::PrimaryInput);
        self.inputs.push(id);
        id
    }

    /// Adds a gate of `kind` over `inputs`, driving a fresh net named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::Arity`] if the number of inputs is illegal for
    /// `kind`, or [`LogicError::UnknownNet`] if an input id is out of range.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        inputs: &[NetId],
        name: impl Into<String>,
    ) -> Result<NetId> {
        kind.check_arity(inputs.len())?;
        for &i in inputs {
            if i.index() >= self.nets.len() {
                return Err(LogicError::UnknownNet(i.index()));
            }
        }
        let gate_idx = self.gates.len() as u32;
        let out = self.fresh_net(name, Driver::Gate(gate_idx));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Convenience: adds a constant-0 net.
    pub fn add_const0(&mut self, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Const0, &[], name)
            .expect("const arity is always valid")
    }

    /// Convenience: adds a constant-1 net.
    pub fn add_const1(&mut self, name: impl Into<String>) -> NetId {
        self.add_gate(GateKind::Const1, &[], name)
            .expect("const arity is always valid")
    }

    /// Marks an existing net as a primary output. A net may be marked more
    /// than once (multi-port outputs), matching BLIF semantics.
    ///
    /// Debug builds assert that `net` exists; release builds accept the id
    /// silently and [`Network::validate`] reports it as
    /// [`LogicError::UnknownNet`].
    pub fn mark_output(&mut self, net: NetId) {
        debug_assert!(
            net.index() < self.nets.len(),
            "mark_output given dangling net id {net} (network has {} nets)",
            self.nets.len()
        );
        self.outputs.push(net);
    }

    /// Primary inputs, in creation order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs, in the order they were marked.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// All gates in creation (= topological) order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The net with the given id.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::UnknownNet`] when the id is out of range.
    pub fn net(&self, id: NetId) -> Result<&Net> {
        self.nets
            .get(id.index())
            .ok_or(LogicError::UnknownNet(id.index()))
    }

    /// The name of a net (empty string if the id is invalid; prefer
    /// [`Network::net`] when the id is untrusted).
    pub fn net_name(&self, id: NetId) -> &str {
        self.nets.get(id.index()).map_or("", |n| n.name())
    }

    /// Looks a net up by name.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Returns `true` when `id` is a primary input.
    pub fn is_input(&self, id: NetId) -> bool {
        matches!(self.drivers.get(id.index()), Some(Driver::PrimaryInput))
    }

    /// Returns the gate driving `id`, if it is gate-driven.
    pub fn driver_gate(&self, id: NetId) -> Option<&Gate> {
        match self.drivers.get(id.index()) {
            Some(Driver::Gate(g)) => Some(&self.gates[*g as usize]),
            _ => None,
        }
    }

    /// Validates structural invariants: every referenced id exists, every
    /// net's recorded driver is consistent (primary inputs are driven as
    /// inputs, gate `g`'s output is driven by gate `g`), gate arities are
    /// legal, and gate fan-ins only reference earlier-created nets (the
    /// acyclicity the constructors enforce).
    ///
    /// The constructors maintain all of these, so well-formed construction
    /// can never fail here; the check exists for code that materializes
    /// networks from untrusted or rewritten sources (parsers, shrinkers,
    /// test generators), and is cheap enough to run in `debug_assert!`s.
    ///
    /// # Errors
    ///
    /// A stable structural fingerprint of the network: FNV-1a over the
    /// input count, every gate (kind, fan-in ids, output id), and the
    /// output list. Net *names* and the model name are excluded — two
    /// networks with identical gate structure hash identically — and the
    /// hash is reproducible across processes and platforms (no
    /// `RandomState`), so it can key persistent or shared artifact caches
    /// (`flowc-compact`'s synthesis `Session`).
    pub fn content_hash(&self) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01B3);
            }
        };
        mix(self.inputs.len() as u64);
        for &i in &self.inputs {
            mix(i.index() as u64);
        }
        mix(self.gates.len() as u64);
        for gate in &self.gates {
            mix(gate.kind as u64);
            mix(gate.inputs.len() as u64);
            for &i in &gate.inputs {
                mix(i.index() as u64);
            }
            mix(gate.output.index() as u64);
        }
        mix(self.outputs.len() as u64);
        for &o in &self.outputs {
            mix(o.index() as u64);
        }
        h
    }

    /// Returns the first violated invariant: [`LogicError::UnknownNet`] for
    /// dangling ids, [`LogicError::MultipleDrivers`] /
    /// [`LogicError::Undriven`] for driver inconsistencies,
    /// [`LogicError::Arity`] for illegal fan-in counts, and
    /// [`LogicError::CombinationalCycle`] for forward references.
    pub fn validate(&self) -> Result<()> {
        let n = self.nets.len();
        if self.drivers.len() != n {
            // Internal desynchronization: some net has no driver record.
            let name = self
                .nets
                .get(self.drivers.len())
                .map_or(String::new(), |net| net.name.clone());
            return Err(LogicError::Undriven(name));
        }
        for &i in &self.inputs {
            if i.index() >= n {
                return Err(LogicError::UnknownNet(i.index()));
            }
            if self.drivers[i.index()] != Driver::PrimaryInput {
                return Err(LogicError::MultipleDrivers(self.net_name(i).to_string()));
            }
        }
        for (g, gate) in self.gates.iter().enumerate() {
            gate.kind.check_arity(gate.inputs.len())?;
            if gate.output.index() >= n {
                return Err(LogicError::UnknownNet(gate.output.index()));
            }
            if self.drivers[gate.output.index()] != Driver::Gate(g as u32) {
                return Err(LogicError::MultipleDrivers(
                    self.net_name(gate.output).to_string(),
                ));
            }
            for &i in &gate.inputs {
                if i.index() >= n {
                    return Err(LogicError::UnknownNet(i.index()));
                }
                // Constructors only let gates read already-created nets, so
                // a fan-in id at or past the gate's own output net is a
                // combinational cycle (or a forward reference, its moral
                // equivalent).
                if i.index() >= gate.output.index() {
                    return Err(LogicError::CombinationalCycle(
                        self.net_name(gate.output).to_string(),
                    ));
                }
            }
        }
        for &o in &self.outputs {
            if o.index() >= n {
                return Err(LogicError::UnknownNet(o.index()));
            }
        }
        Ok(())
    }

    /// Total number of gates (a proxy for circuit size in reports).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> (Network, NetId, NetId) {
        let mut n = Network::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let cin = n.add_input("cin");
        let s = n.add_gate(GateKind::Xor, &[a, b, cin], "sum").unwrap();
        let ab = n.add_gate(GateKind::And, &[a, b], "ab").unwrap();
        let ac = n.add_gate(GateKind::And, &[a, cin], "ac").unwrap();
        let bc = n.add_gate(GateKind::And, &[b, cin], "bc").unwrap();
        let cout = n.add_gate(GateKind::Or, &[ab, ac, bc], "cout").unwrap();
        n.mark_output(s);
        n.mark_output(cout);
        (n, s, cout)
    }

    #[test]
    fn full_adder_truth() {
        let (n, _, _) = full_adder();
        for bits in 0u32..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let out = n.simulate(&[a, b, c]).unwrap();
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "carry for {bits:03b}");
        }
    }

    #[test]
    fn gate_kind_eval_matrix() {
        use GateKind::*;
        let tt = [true, true];
        let tf = [true, false];
        let ff = [false, false];
        assert!(And.eval(&tt) && !And.eval(&tf) && !And.eval(&ff));
        assert!(Or.eval(&tt) && Or.eval(&tf) && !Or.eval(&ff));
        assert!(!Nand.eval(&tt) && Nand.eval(&tf) && Nand.eval(&ff));
        assert!(!Nor.eval(&tt) && !Nor.eval(&tf) && Nor.eval(&ff));
        assert!(!Xor.eval(&tt) && Xor.eval(&tf) && !Xor.eval(&ff));
        assert!(Xnor.eval(&tt) && !Xnor.eval(&tf) && Xnor.eval(&ff));
        assert!(Not.eval(&[false]) && !Not.eval(&[true]));
        assert!(Buf.eval(&[true]) && !Buf.eval(&[false]));
        assert!(!Const0.eval(&[]) && Const1.eval(&[]));
        assert!(Mux.eval(&[true, true, false]));
        assert!(!Mux.eval(&[false, true, false]));
    }

    #[test]
    fn eval64_agrees_with_eval() {
        use GateKind::*;
        for kind in [And, Or, Nand, Nor, Xor, Xnor] {
            for pat in 0u8..4 {
                let a = pat & 1 != 0;
                let b = pat & 2 != 0;
                let wide =
                    kind.eval64(&[if a { u64::MAX } else { 0 }, if b { u64::MAX } else { 0 }]);
                let scalar = kind.eval(&[a, b]);
                assert_eq!(wide == u64::MAX, scalar, "{kind:?} {pat:02b}");
                assert!(wide == u64::MAX || wide == 0);
            }
        }
        // Mux mixes lanes correctly.
        let sel = 0b1010u64;
        let t = 0b1100u64;
        let e = 0b0011u64;
        assert_eq!(Mux.eval64(&[sel, t, e]) & 0xF, 0b1001);
    }

    #[test]
    fn arity_is_checked() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        assert!(matches!(
            n.add_gate(GateKind::And, &[a], "bad"),
            Err(LogicError::Arity { .. })
        ));
        assert!(matches!(
            n.add_gate(GateKind::Not, &[a, a], "bad"),
            Err(LogicError::Arity { .. })
        ));
        assert!(matches!(
            n.add_gate(GateKind::Mux, &[a, a], "bad"),
            Err(LogicError::Arity { .. })
        ));
    }

    #[test]
    fn unknown_net_rejected() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let bogus = NetId(99);
        assert!(matches!(
            n.add_gate(GateKind::And, &[a, bogus], "bad"),
            Err(LogicError::UnknownNet(99))
        ));
    }

    #[test]
    fn names_are_uniquified_not_rejected() {
        let mut n = Network::new("t");
        let a = n.add_input("x");
        let b = n.add_input("x");
        assert_ne!(a, b);
        assert_ne!(n.net_name(a), n.net_name(b));
        assert_eq!(n.find_net("x"), Some(a));
    }

    #[test]
    fn validate_accepts_wellformed() {
        let (n, _, _) = full_adder();
        n.validate().unwrap();
    }

    #[test]
    fn validate_catches_dangling_output() {
        // Corrupt the private field directly: public constructors cannot
        // produce this state (mark_output debug-asserts), but validate()
        // must still catch it for release-built untrusted paths.
        let (mut n, _, _) = full_adder();
        n.outputs.push(NetId(99));
        assert!(matches!(n.validate(), Err(LogicError::UnknownNet(99))));
    }

    #[test]
    fn validate_catches_driver_inconsistency() {
        let (mut n, s, _) = full_adder();
        // The XOR's output net claims to be a primary input.
        n.drivers[s.index()] = Driver::PrimaryInput;
        assert!(matches!(n.validate(), Err(LogicError::MultipleDrivers(_))));

        let (mut n, _, _) = full_adder();
        // An input net claims to be gate-driven.
        let a = n.find_net("a").unwrap();
        n.drivers[a.index()] = Driver::Gate(0);
        assert!(matches!(n.validate(), Err(LogicError::MultipleDrivers(_))));
    }

    #[test]
    fn validate_catches_forward_references() {
        let (mut n, s, cout) = full_adder();
        // Rewire the sum XOR (an early gate) to read the carry OR (a later
        // net): a forward reference the constructors would have refused.
        let xor = n
            .gates
            .iter_mut()
            .find(|g| g.output == s)
            .expect("sum gate exists");
        xor.inputs[0] = cout;
        assert!(matches!(
            n.validate(),
            Err(LogicError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn validate_catches_dangling_gate_input() {
        let (mut n, s, _) = full_adder();
        let xor = n.gates.iter_mut().find(|g| g.output == s).unwrap();
        xor.inputs[0] = NetId(1000);
        assert!(matches!(n.validate(), Err(LogicError::UnknownNet(1000))));
    }

    #[test]
    fn validate_catches_corrupted_arity() {
        let (mut n, s, _) = full_adder();
        let xor = n.gates.iter_mut().find(|g| g.output == s).unwrap();
        xor.inputs.truncate(1);
        assert!(matches!(n.validate(), Err(LogicError::Arity { .. })));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dangling net id")]
    fn mark_output_asserts_on_dangling_ids_in_debug() {
        let mut n = Network::new("t");
        n.add_input("a");
        n.mark_output(NetId(42));
    }

    #[test]
    fn lookup_and_drivers() {
        let (n, s, _) = full_adder();
        assert!(n.is_input(n.find_net("a").unwrap()));
        assert!(!n.is_input(s));
        let g = n.driver_gate(s).unwrap();
        assert_eq!(g.kind, GateKind::Xor);
        assert_eq!(g.inputs.len(), 3);
        assert!(n.driver_gate(n.find_net("a").unwrap()).is_none());
    }

    #[test]
    fn counts() {
        let (n, _, _) = full_adder();
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_outputs(), 2);
        assert_eq!(n.num_gates(), 5);
        assert_eq!(n.num_nets(), 8);
    }

    #[test]
    fn content_hash_ignores_names_but_sees_structure() {
        let (a, _, _) = full_adder();
        let (b, _, _) = full_adder();
        assert_eq!(a.content_hash(), b.content_hash());

        // Same structure under different names hashes identically.
        let mut renamed = a.clone();
        renamed.set_name("other-model");
        assert_eq!(a.content_hash(), renamed.content_hash());

        // Any structural change — an extra gate, a different kind, or a
        // different output list — changes the hash.
        let mut extra = a.clone();
        let x = extra.find_net("a").unwrap();
        let g = extra.add_gate(GateKind::Not, &[x], "extra").unwrap();
        assert_ne!(a.content_hash(), extra.content_hash());
        extra.mark_output(g);
        assert_ne!(a.content_hash(), extra.content_hash());
    }
}

//! Network transformations: decomposition of wide gates into two-input
//! networks (the AIG-style form technology mappers and the CONTRA flow
//! consume) and related restructuring helpers.

use crate::{GateKind, NetId, Network, Result};

/// Rewrites every gate with more than two inputs into a balanced tree of
/// two-input gates (XNOR/NAND/NOR trees get a final inverter; MUX becomes
/// AND/AND/OR plus an inverter). The result is functionally identical and
/// reflects how synthesized netlists (e.g. the EPFL AIGs) actually look.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid inputs).
pub fn binarize(network: &Network) -> Result<Network> {
    let mut out = Network::new(network.name());
    let mut map = vec![NetId(u32::MAX); network.num_nets()];
    for &i in network.inputs() {
        map[i.index()] = out.add_input(network.net_name(i));
    }
    for gate in network.gates() {
        let ops: Vec<NetId> = gate.inputs.iter().map(|i| map[i.index()]).collect();
        let name = network.net_name(gate.output).to_string();
        let result = match gate.kind {
            GateKind::Const0 => out.add_gate(GateKind::Const0, &[], name)?,
            GateKind::Const1 => out.add_gate(GateKind::Const1, &[], name)?,
            GateKind::Buf => out.add_gate(GateKind::Buf, &ops, name)?,
            GateKind::Not => out.add_gate(GateKind::Not, &ops, name)?,
            GateKind::And => tree(&mut out, GateKind::And, &ops, &name)?,
            GateKind::Or => tree(&mut out, GateKind::Or, &ops, &name)?,
            GateKind::Xor => tree(&mut out, GateKind::Xor, &ops, &name)?,
            GateKind::Nand => {
                let and = tree(&mut out, GateKind::And, &ops, &format!("{name}$t"))?;
                out.add_gate(GateKind::Not, &[and], name)?
            }
            GateKind::Nor => {
                let or = tree(&mut out, GateKind::Or, &ops, &format!("{name}$t"))?;
                out.add_gate(GateKind::Not, &[or], name)?
            }
            GateKind::Xnor => {
                let xor = tree(&mut out, GateKind::Xor, &ops, &format!("{name}$t"))?;
                out.add_gate(GateKind::Not, &[xor], name)?
            }
            GateKind::Mux => {
                let ns = out.add_gate(GateKind::Not, &[ops[0]], format!("{name}$n"))?;
                let a = out.add_gate(GateKind::And, &[ops[0], ops[1]], format!("{name}$a"))?;
                let b = out.add_gate(GateKind::And, &[ns, ops[2]], format!("{name}$b"))?;
                out.add_gate(GateKind::Or, &[a, b], name)?
            }
        };
        map[gate.output.index()] = result;
    }
    for &o in network.outputs() {
        out.mark_output(map[o.index()]);
    }
    Ok(out)
}

/// Light logic optimization: constant folding, operand deduplication,
/// single-operand collapsing, structural hashing (identical gates merge),
/// and dead-gate elimination. The result is functionally identical; BDD
/// construction and the MAGIC baseline both benefit from the cleanup on
/// redundant netlists.
///
/// # Errors
///
/// Propagates construction errors (none occur for valid inputs).
pub fn simplify(network: &Network) -> Result<Network> {
    use std::collections::HashMap;

    // First pass over the *old* network computing symbolic values; gates
    // are materialized lazily in a scratch network, then only the cones of
    // the outputs are copied into the final result (dead-gate elimination).
    let mut scratch = Network::new(network.name());
    let mut val = vec![Val::Const(false); network.num_nets()];
    for &i in network.inputs() {
        let ni = scratch.add_input(network.net_name(i));
        val[i.index()] = Val::Net(ni);
    }
    let mut structural: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();
    for gate in network.gates() {
        let ops: Vec<Val> = gate.inputs.iter().map(|i| val[i.index()]).collect();
        let name = network.net_name(gate.output).to_string();
        val[gate.output.index()] =
            fold_gate(&mut scratch, &mut structural, gate.kind, &ops, &name)?;
    }

    // Copy live cones into the result.
    let mut out = Network::new(network.name());
    let mut live_map: Vec<Option<NetId>> = vec![None; scratch.num_nets()];
    for &i in scratch.inputs() {
        live_map[i.index()] = Some(out.add_input(scratch.net_name(i)));
    }
    fn copy_cone(
        scratch: &Network,
        out: &mut Network,
        live_map: &mut Vec<Option<NetId>>,
        net: NetId,
    ) -> Result<NetId> {
        if let Some(mapped) = live_map[net.index()] {
            return Ok(mapped);
        }
        let gate = scratch
            .driver_gate(net)
            .expect("non-input nets are gate-driven")
            .clone();
        let ops: Vec<NetId> = gate
            .inputs
            .iter()
            .map(|&i| copy_cone(scratch, out, live_map, i))
            .collect::<Result<_>>()?;
        let mapped = out.add_gate(gate.kind, &ops, scratch.net_name(net))?;
        live_map[net.index()] = Some(mapped);
        Ok(mapped)
    }
    for &o in network.outputs() {
        let mapped = match val[o.index()] {
            Val::Const(false) => out.add_const0(format!("{}$k0", network.net_name(o))),
            Val::Const(true) => out.add_const1(format!("{}$k1", network.net_name(o))),
            Val::Net(net) => copy_cone(&scratch, &mut out, &mut live_map, net)?,
        };
        out.mark_output(mapped);
    }
    Ok(out)
}

/// Symbolic value of a net during [`simplify`]: a constant or a signal of
/// the scratch network.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum Val {
    Const(bool),
    Net(NetId),
}

/// Folds one gate over symbolic operands, materializing at most one new
/// gate in `scratch` (with structural hashing).
fn fold_gate(
    scratch: &mut Network,
    structural: &mut std::collections::HashMap<(GateKind, Vec<NetId>), NetId>,
    kind: GateKind,
    ops: &[Val],
    name: &str,
) -> Result<Val> {
    use GateKind::*;
    // Split constants and signals.
    let mut signals: Vec<NetId> = Vec::new();
    let mut consts: Vec<bool> = Vec::new();
    for v in ops {
        match v {
            Val::Const(b) => consts.push(*b),
            Val::Net(n) => signals.push(*n),
        }
    }
    let mk = |scratch: &mut Network,
              structural: &mut std::collections::HashMap<(GateKind, Vec<NetId>), NetId>,
              kind: GateKind,
              mut sig: Vec<NetId>,
              name: &str|
     -> Result<Val> {
        if matches!(kind, And | Or | Xor) {
            sig.sort_unstable();
            if matches!(kind, And | Or) {
                sig.dedup();
            }
        }
        if sig.len() == 1 && matches!(kind, And | Or | Xor) {
            return Ok(Val::Net(sig[0]));
        }
        let key = (kind, sig.clone());
        if let Some(&existing) = structural.get(&key) {
            return Ok(Val::Net(existing));
        }
        let net = scratch.add_gate(kind, &sig, name)?;
        structural.insert(key, net);
        Ok(Val::Net(net))
    };
    let negate = |scratch: &mut Network,
                  structural: &mut std::collections::HashMap<(GateKind, Vec<NetId>), NetId>,
                  v: Val,
                  name: &str|
     -> Result<Val> {
        match v {
            Val::Const(b) => Ok(Val::Const(!b)),
            Val::Net(n) => {
                // Double negation cancels: if n itself is a NOT, reuse its
                // operand.
                if let Some(gate) = scratch.driver_gate(n) {
                    if gate.kind == Not {
                        return Ok(Val::Net(gate.inputs[0]));
                    }
                }
                let key = (Not, vec![n]);
                if let Some(&existing) = structural.get(&key) {
                    return Ok(Val::Net(existing));
                }
                let net = scratch.add_gate(Not, &[n], name)?;
                structural.insert(key, net);
                Ok(Val::Net(net))
            }
        }
    };
    match kind {
        Const0 => Ok(Val::Const(false)),
        Const1 => Ok(Val::Const(true)),
        Buf => Ok(ops[0]),
        Not => negate(scratch, structural, ops[0], name),
        And | Nand => {
            let base = if consts.iter().any(|&b| !b) {
                Val::Const(false)
            } else if signals.is_empty() {
                Val::Const(true)
            } else {
                mk(scratch, structural, And, signals, name)?
            };
            if kind == Nand {
                negate(scratch, structural, base, name)
            } else {
                Ok(base)
            }
        }
        Or | Nor => {
            let base = if consts.iter().any(|&b| b) {
                Val::Const(true)
            } else if signals.is_empty() {
                Val::Const(false)
            } else {
                mk(scratch, structural, Or, signals, name)?
            };
            if kind == Nor {
                negate(scratch, structural, base, name)
            } else {
                Ok(base)
            }
        }
        Xor | Xnor => {
            let mut parity = consts.iter().filter(|&&b| b).count() % 2 == 1;
            if kind == Xnor {
                parity = !parity;
            }
            // x ⊕ x = 0: cancel duplicate signals pairwise.
            signals.sort_unstable();
            let mut cancelled: Vec<NetId> = Vec::new();
            let mut i = 0;
            while i < signals.len() {
                if i + 1 < signals.len() && signals[i] == signals[i + 1] {
                    i += 2;
                } else {
                    cancelled.push(signals[i]);
                    i += 1;
                }
            }
            let base = if cancelled.is_empty() {
                Val::Const(false)
            } else {
                mk(scratch, structural, Xor, cancelled, name)?
            };
            if parity {
                negate(scratch, structural, base, name)
            } else {
                Ok(base)
            }
        }
        Mux => {
            match ops[0] {
                Val::Const(true) => Ok(ops[1]),
                Val::Const(false) => Ok(ops[2]),
                Val::Net(sel) => {
                    if ops[1] == ops[2] {
                        return Ok(ops[1]);
                    }
                    match (ops[1], ops[2]) {
                        (Val::Const(t), Val::Const(e)) => {
                            debug_assert_ne!(t, e, "equal branches returned above");
                            if t {
                                Ok(Val::Net(sel)) // mux(s, 1, 0) = s
                            } else {
                                negate(scratch, structural, Val::Net(sel), name)
                            }
                        }
                        (Val::Const(true), Val::Net(e)) => {
                            mk(scratch, structural, Or, vec![sel, e], name)
                        }
                        (Val::Net(t), Val::Const(false)) => {
                            mk(scratch, structural, And, vec![sel, t], name)
                        }
                        (Val::Const(false), Val::Net(e)) => {
                            let ns =
                                negate(scratch, structural, Val::Net(sel), &format!("{name}$n"))?;
                            let Val::Net(ns) = ns else { unreachable!() };
                            mk(scratch, structural, And, vec![ns, e], name)
                        }
                        (Val::Net(t), Val::Const(true)) => {
                            let ns =
                                negate(scratch, structural, Val::Net(sel), &format!("{name}$n"))?;
                            let Val::Net(ns) = ns else { unreachable!() };
                            mk(scratch, structural, Or, vec![ns, t], name)
                        }
                        (Val::Net(t), Val::Net(e)) => {
                            let key = (Mux, vec![sel, t, e]);
                            if let Some(&existing) = structural.get(&key) {
                                return Ok(Val::Net(existing));
                            }
                            let net = scratch.add_gate(Mux, &[sel, t, e], name)?;
                            structural.insert(key, net);
                            Ok(Val::Net(net))
                        }
                    }
                }
            }
        }
    }
}

/// Balanced two-input tree over `ops` (which has at least one element).
fn tree(out: &mut Network, kind: GateKind, ops: &[NetId], name: &str) -> Result<NetId> {
    match ops.len() {
        0 => unreachable!("gate arities are validated at construction"),
        1 => out.add_gate(GateKind::Buf, &[ops[0]], name),
        2 => out.add_gate(kind, ops, name),
        _ => {
            let mid = ops.len() / 2;
            let left = tree(out, kind, &ops[..mid], &format!("{name}$l"))?;
            let right = tree(out, kind, &ops[mid..], &format!("{name}$r"))?;
            out.add_gate(kind, &[left, right], name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_suite;

    #[test]
    fn binarized_networks_have_only_small_gates() {
        for name in ["ctrl", "int2float", "c432"] {
            let n = bench_suite::by_name(name).unwrap().network().unwrap();
            let b = binarize(&n).unwrap();
            for gate in b.gates() {
                assert!(
                    gate.inputs.len() <= 2,
                    "{name}: {:?} has {} inputs",
                    gate.kind,
                    gate.inputs.len()
                );
                assert!(!matches!(gate.kind, GateKind::Mux));
            }
        }
    }

    #[test]
    fn binarization_preserves_function() {
        for name in ["ctrl", "int2float", "cavlc"] {
            let n = bench_suite::by_name(name).unwrap().network().unwrap();
            let b = binarize(&n).unwrap();
            assert_eq!(b.num_inputs(), n.num_inputs());
            assert_eq!(b.num_outputs(), n.num_outputs());
            let mut seed = 0x1357_9BDF_2468_ACE0u64;
            for _ in 0..100 {
                let vals: Vec<bool> = (0..n.num_inputs())
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect();
                assert_eq!(
                    b.simulate(&vals).unwrap(),
                    n.simulate(&vals).unwrap(),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn binarization_grows_gate_count_on_wide_circuits() {
        // dec is built from 8-input ANDs: the 2-input form has ~7 gates per
        // output instead of ~2.
        let n = bench_suite::by_name("dec").unwrap().network().unwrap();
        let b = binarize(&n).unwrap();
        assert!(b.num_gates() > n.num_gates());
    }

    #[test]
    fn simplify_preserves_function_on_benchmarks() {
        for name in ["ctrl", "int2float", "cavlc", "router"] {
            let n = bench_suite::by_name(name).unwrap().network().unwrap();
            let s = simplify(&n).unwrap();
            assert_eq!(s.num_inputs(), n.num_inputs());
            assert_eq!(s.num_outputs(), n.num_outputs());
            let mut seed = 0x0BAD_F00D_DEAD_BEEFu64;
            for _ in 0..100 {
                let vals: Vec<bool> = (0..n.num_inputs())
                    .map(|_| {
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        seed & 1 == 1
                    })
                    .collect();
                assert_eq!(
                    s.simulate(&vals).unwrap(),
                    n.simulate(&vals).unwrap(),
                    "{name}"
                );
            }
        }
    }

    #[test]
    fn simplify_removes_redundancy() {
        let mut n = Network::new("redundant");
        let a = n.add_input("a");
        let b = n.add_input("b");
        // Two structurally identical gates.
        let g1 = n.add_gate(GateKind::And, &[a, b], "g1").unwrap();
        let g2 = n.add_gate(GateKind::And, &[b, a], "g2").unwrap();
        // x ⊕ x = 0, folded against a constant.
        let x = n.add_gate(GateKind::Xor, &[g1, g2], "x").unwrap();
        let k1 = n.add_const1("k1");
        let dead = n.add_gate(GateKind::Or, &[a, b], "dead").unwrap();
        let _ = dead; // never used by an output
        let f = n.add_gate(GateKind::Or, &[x, k1], "f").unwrap(); // ≡ 1
        let g = n.add_gate(GateKind::Not, &[g1], "ng").unwrap();
        let gg = n.add_gate(GateKind::Not, &[g], "ngg").unwrap(); // ≡ g1
        n.mark_output(f);
        n.mark_output(gg);
        let s = simplify(&n).unwrap();
        // f collapses to constant 1; gg collapses to the single AND.
        assert!(s.num_gates() <= 2, "got {} gates", s.num_gates());
        for bits in 0u32..4 {
            let v = [bits & 1 != 0, bits & 2 != 0];
            assert_eq!(s.simulate(&v).unwrap(), n.simulate(&v).unwrap());
        }
    }

    #[test]
    fn simplify_folds_mux_constants() {
        let mut n = Network::new("m");
        let s = n.add_input("s");
        let t = n.add_input("t");
        let k1 = n.add_const1("k1");
        let k0 = n.add_const0("k0");
        let m1 = n.add_gate(GateKind::Mux, &[s, k1, k0], "m1").unwrap(); // ≡ s
        let m2 = n.add_gate(GateKind::Mux, &[s, k0, k1], "m2").unwrap(); // ≡ ¬s
        let m3 = n.add_gate(GateKind::Mux, &[k1, t, s], "m3").unwrap(); // ≡ t
        n.mark_output(m1);
        n.mark_output(m2);
        n.mark_output(m3);
        let simplified = simplify(&n).unwrap();
        assert!(simplified.num_gates() <= 1, "{}", simplified.num_gates());
        for bits in 0u32..4 {
            let v = [bits & 1 != 0, bits & 2 != 0];
            assert_eq!(simplified.simulate(&v).unwrap(), n.simulate(&v).unwrap());
        }
    }

    #[test]
    fn simplify_then_binarize_composes() {
        let n = bench_suite::by_name("ctrl").unwrap().network().unwrap();
        let s = binarize(&simplify(&n).unwrap()).unwrap();
        for bits in 0u32..128 {
            let v: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(s.simulate(&v).unwrap(), n.simulate(&v).unwrap());
        }
    }

    #[test]
    fn constants_and_single_input_gates_survive() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let k1 = n.add_const1("k1");
        let nb = n.add_gate(GateKind::Not, &[a], "na").unwrap();
        let x = n.add_gate(GateKind::Xor, &[k1, nb], "x").unwrap();
        n.mark_output(x);
        let b = binarize(&n).unwrap();
        for v in [false, true] {
            assert_eq!(b.simulate(&[v]).unwrap(), n.simulate(&[v]).unwrap());
        }
    }
}

//! PLA (programmable logic array, Espresso format) reading and writing.
//!
//! Supports the common subset: `.i`, `.o`, `.ilb`, `.ob`, `.p`, `.type fr`
//! (and the default `f` type), cube rows, and `.e`/`.end`. Each output is
//! built as the OR of the cubes whose output column is `1`; `~`/`-` output
//! positions are treated as 0 (type `f` semantics).
//!
//! ```
//! let src = "\
//! .i 2
//! .o 1
//! .ilb a b
//! .ob xor
//! .p 2
//! 01 1
//! 10 1
//! .e
//! ";
//! let n = flowc_logic::pla::parse(src).unwrap();
//! assert!(n.simulate(&[true, false]).unwrap()[0]);
//! assert!(!n.simulate(&[true, true]).unwrap()[0]);
//! ```

use std::fmt::Write as _;

use crate::cube::{Cube, CubeLit};
use crate::{GateKind, LogicError, NetId, Network, Result};

/// Parses PLA source text into a [`Network`].
///
/// # Errors
///
/// Returns [`LogicError::Parse`] on malformed input.
pub fn parse(source: &str) -> Result<Network> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut input_labels: Option<Vec<String>> = None;
    let mut output_labels: Option<Vec<String>> = None;
    let mut rows: Vec<(usize, Cube, Vec<bool>)> = Vec::new();

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let mut toks = text.split_whitespace();
        let first = toks.next().expect("nonempty line");
        match first {
            ".i" => {
                let v = toks
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| LogicError::Parse {
                        line,
                        message: ".i needs a number".into(),
                    })?;
                num_inputs = Some(v);
            }
            ".o" => {
                let v = toks
                    .next()
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| LogicError::Parse {
                        line,
                        message: ".o needs a number".into(),
                    })?;
                num_outputs = Some(v);
            }
            ".ilb" => input_labels = Some(toks.map(str::to_string).collect()),
            ".ob" => output_labels = Some(toks.map(str::to_string).collect()),
            ".p" => { /* cube count hint; we count rows ourselves */ }
            ".type" => {
                let t = toks.next().unwrap_or("f");
                if t != "f" && t != "fr" {
                    return Err(LogicError::Parse {
                        line,
                        message: format!("unsupported PLA type `{t}` (only f/fr)"),
                    });
                }
            }
            ".e" | ".end" => break,
            other if other.starts_with('.') => {
                return Err(LogicError::Parse {
                    line,
                    message: format!("unknown PLA directive `{other}`"),
                });
            }
            cube_text => {
                let ni = num_inputs.ok_or_else(|| LogicError::Parse {
                    line,
                    message: "cube row before .i".into(),
                })?;
                let no = num_outputs.ok_or_else(|| LogicError::Parse {
                    line,
                    message: "cube row before .o".into(),
                })?;
                let out_text = toks.next().ok_or_else(|| LogicError::Parse {
                    line,
                    message: "cube row is missing its output part".into(),
                })?;
                if toks.next().is_some() {
                    return Err(LogicError::Parse {
                        line,
                        message: "trailing tokens after output part".into(),
                    });
                }
                let cube = Cube::parse(cube_text, line)?;
                if cube.width() != ni {
                    return Err(LogicError::Parse {
                        line,
                        message: format!("input part has {} positions, .i says {ni}", cube.width()),
                    });
                }
                if out_text.len() != no {
                    return Err(LogicError::Parse {
                        line,
                        message: format!(
                            "output part has {} positions, .o says {no}",
                            out_text.len()
                        ),
                    });
                }
                let outs = out_text
                    .chars()
                    .map(|c| match c {
                        '1' | '4' => Ok(true),
                        '0' | '~' | '-' | '2' | '3' => Ok(false),
                        other => Err(LogicError::Parse {
                            line,
                            message: format!("invalid output character `{other}`"),
                        }),
                    })
                    .collect::<Result<Vec<bool>>>()?;
                rows.push((line, cube, outs));
            }
        }
    }

    let ni = num_inputs.ok_or_else(|| LogicError::Parse {
        line: 0,
        message: "missing .i".into(),
    })?;
    let no = num_outputs.ok_or_else(|| LogicError::Parse {
        line: 0,
        message: "missing .o".into(),
    })?;

    let mut network = Network::new("pla");
    let input_ids: Vec<NetId> = (0..ni)
        .map(|i| {
            let name = input_labels
                .as_ref()
                .and_then(|l| l.get(i).cloned())
                .unwrap_or_else(|| format!("in{i}"));
            network.add_input(name)
        })
        .collect();

    // Shared literal inverters, created on demand.
    let mut inverted: Vec<Option<NetId>> = vec![None; ni];
    let mut cube_nets: Vec<NetId> = Vec::with_capacity(rows.len());
    for (ri, (_, cube, _)) in rows.iter().enumerate() {
        let mut lits: Vec<NetId> = Vec::new();
        for (pos, lit) in cube.lits().iter().enumerate() {
            match lit {
                CubeLit::DontCare => {}
                CubeLit::Pos => lits.push(input_ids[pos]),
                CubeLit::Neg => {
                    let inv = match inverted[pos] {
                        Some(id) => id,
                        None => {
                            let id = network.add_gate(
                                GateKind::Not,
                                &[input_ids[pos]],
                                format!("ninv{pos}"),
                            )?;
                            inverted[pos] = Some(id);
                            id
                        }
                    };
                    lits.push(inv);
                }
            }
        }
        let net = match lits.len() {
            0 => network.add_const1(format!("p{ri}")),
            1 => lits[0],
            _ => network.add_gate(GateKind::And, &lits, format!("p{ri}"))?,
        };
        cube_nets.push(net);
    }

    for o in 0..no {
        let name = output_labels
            .as_ref()
            .and_then(|l| l.get(o).cloned())
            .unwrap_or_else(|| format!("out{o}"));
        let members: Vec<NetId> = rows
            .iter()
            .zip(&cube_nets)
            .filter(|((_, _, outs), _)| outs[o])
            .map(|(_, &net)| net)
            .collect();
        let out = match members.len() {
            0 => network.add_const0(&name),
            1 => network.add_gate(GateKind::Buf, &[members[0]], &name)?,
            _ => network.add_gate(GateKind::Or, &members, &name)?,
        };
        network.mark_output(out);
    }
    network.validate()?;
    Ok(network)
}

/// Serializes the two-level projection of a network to PLA text.
///
/// The network must have at most [`crate::truth::MAX_TRUTH_VARS`] inputs;
/// the PLA is emitted as one minterm row per satisfying assignment per
/// output (no minimization), which is sufficient for interchange and tests.
///
/// # Errors
///
/// Returns [`LogicError::TruthTooLarge`] for networks with too many inputs.
pub fn write(network: &Network) -> Result<String> {
    let tts = network.truth_tables()?;
    let ni = network.num_inputs();
    let no = network.num_outputs();
    let mut out = String::new();
    let _ = writeln!(out, ".i {ni}");
    let _ = writeln!(out, ".o {no}");
    let _ = write!(out, ".ilb");
    for &i in network.inputs() {
        let _ = write!(out, " {}", network.net_name(i));
    }
    let _ = writeln!(out);
    let _ = write!(out, ".ob");
    for &o in network.outputs() {
        let _ = write!(out, " {}", network.net_name(o));
    }
    let _ = writeln!(out);
    let mut rows: Vec<(usize, Vec<bool>)> = Vec::new();
    for r in 0..1usize << ni {
        let outs: Vec<bool> = tts.iter().map(|t| t.get(r)).collect();
        if outs.iter().any(|&b| b) {
            rows.push((r, outs));
        }
    }
    let _ = writeln!(out, ".p {}", rows.len());
    for (r, outs) in rows {
        for i in 0..ni {
            let _ = write!(out, "{}", (r >> i) & 1);
        }
        let _ = write!(out, " ");
        for b in outs {
            let _ = write!(out, "{}", b as u8);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, ".e");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn parse_two_output_pla() {
        let src = "\
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
11- 10
--1 01
000 11
.e
";
        let n = parse(src).unwrap();
        assert_eq!(n.num_inputs(), 3);
        assert_eq!(n.num_outputs(), 2);
        // f = ab | !a!b!c ; g = c | !a!b!c
        let case = |a: bool, b: bool, c: bool| n.simulate(&[a, b, c]).unwrap();
        assert_eq!(case(true, true, false), vec![true, false]);
        assert_eq!(case(false, false, true), vec![false, true]);
        assert_eq!(case(false, false, false), vec![true, true]);
        assert_eq!(case(true, false, false), vec![false, false]);
    }

    #[test]
    fn default_labels_synthesized() {
        let src = ".i 2\n.o 1\n11 1\n.e\n";
        let n = parse(src).unwrap();
        assert!(n.find_net("in0").is_some());
        assert!(n.find_net("out0").is_some());
    }

    #[test]
    fn empty_output_is_constant_zero() {
        let src = ".i 1\n.o 2\n1 10\n.e\n";
        let n = parse(src).unwrap();
        assert_eq!(n.simulate(&[true]).unwrap(), vec![true, false]);
        assert_eq!(n.simulate(&[false]).unwrap(), vec![false, false]);
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(parse(".i 2\n.o 1\n111 1\n.e\n").is_err()); // wide cube
        assert!(parse(".i 2\n.o 1\n11 11\n.e\n").is_err()); // wide output
        assert!(parse(".i 2\n.o 1\n11\n.e\n").is_err()); // missing output
        assert!(parse("11 1\n.e\n").is_err()); // row before .i/.o
        assert!(parse(".i 2\n.o 1\n.type xyz\n.e\n").is_err());
    }

    #[test]
    fn write_then_parse_is_equivalent() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let x = n.add_gate(GateKind::Xor, &[a, b], "x").unwrap();
        let f = n.add_gate(GateKind::Or, &[x, c], "f").unwrap();
        let g = n.add_gate(GateKind::Nand, &[a, c], "g").unwrap();
        n.mark_output(f);
        n.mark_output(g);
        let text = write(&n).unwrap();
        let back = parse(&text).unwrap();
        for bits in 0u32..8 {
            let vals: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(back.simulate(&vals).unwrap(), n.simulate(&vals).unwrap());
        }
    }
}

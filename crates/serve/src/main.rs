//! The `flowc-serve` binary: bind the synthesis service, run until
//! SIGTERM/SIGINT, then drain gracefully.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use flowc_serve::{JournalConfig, ServeConfig, Server};

/// Set by the signal handler; polled by the main loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: a single relaxed atomic store.
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Registers `on_signal` for SIGTERM and SIGINT through libc's `signal`
/// (std links libc on every supported platform; declaring the symbol
/// keeps the crate dependency-free).
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

const HELP: &str = "\
flowc-serve — fault-contained synthesis service for the COMPACT pipeline

USAGE:
    flowc-serve [options]

OPTIONS:
    --addr <host:port>    bind address (default 127.0.0.1:7878; port 0 picks
                          a free port and prints it)
    --workers <n>         synthesis worker threads (default 2)
    --queue-cap <n>       bounded job-queue capacity (default 64)
    --shards <n>          artifact-cache session shards (default 4)
    --cache-cap <n>       cached artifacts per stage per shard (default 64)
    --retain <n>          finished jobs retained for /result (default 1024)
    --enable-chaos        honor the `chaos` job field (testing only: a chaos
                          job panics its worker to exercise the supervisor)
    --journal <dir>       write-ahead job journal: every lifecycle record is
                          CRC32-framed and fsynced there; on startup the log
                          is replayed (tolerating a torn tail), finished
                          results are restored, and interrupted jobs re-run.
                          Submissions may carry a `job_key` for idempotent
                          resubmission across crashes.
    --journal-segment <n> records per journal segment before rotation
                          (default 1024)
    --journal-segments <n> sealed segments kept before compaction into the
                          snapshot (default 4)
    --journal-sync-batch <n> lazy records buffered between fsyncs (default 8;
                          admissions and terminal records always sync)
    --port-file <path>    write the actual bound port to <path> after bind
                          (for harnesses using --addr with port 0)
    -h, --help            print this help

ENDPOINTS:
    POST /submit   {\"circuit\", \"format\": blif|pla|verilog|bench,
                    \"gamma\"?, \"strategy\"?: exact-mip|anytime-mip|
                    heuristic-oct|staircase, \"deadline_ms\"?, \"priority\"?}
    POST /patch    {\"base_key\", \"job_key\", \"edits\": [\"add t and a b\", ...],
                    \"gamma\"?, \"strategy\"?, \"deadline_ms\"?, \"priority\"?}
                   incremental re-synthesis: applies the edit stream to the
                   netlist of the job named by base_key (its job_key) and
                   re-labels only the affected output cones, falling back
                   to cold synthesis; job_key names the patched state for
                   further chaining
    GET  /status?id=<n>    job lifecycle state
    GET  /result?id=<n>    terminal outcome (design summary or typed error)
    POST /cancel   {\"id\": <n>}   aborts a queued or running job
    GET  /metrics  latency histograms, cache hit rates, queue depth,
                   shed/degradation counters, worker restarts
    GET  /healthz  liveness probe

EXIT CODES (flowc convention: 0 ok, 2 valid-but-degraded, 1 hard failure):
    0  clean shutdown (SIGTERM/SIGINT drain completed)
    1  startup or configuration failure (bad flag, bind error)
    The server itself never exits 2: per-job degradation is reported in
    each job's result body (`degraded`, `shipped_rung`) instead.
";

struct Args {
    config: ServeConfig,
    port_file: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Args>, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServeConfig::default()
    };
    let mut port_file = None;
    let mut journal_segment = None;
    let mut journal_segments = None;
    let mut journal_sync_batch = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return Ok(None);
            }
            "--addr" => config.addr = take("--addr")?.to_string(),
            "--workers" => {
                config.workers = take("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs an integer".to_string())?;
            }
            "--queue-cap" => {
                config.queue_capacity = take("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs an integer".to_string())?;
            }
            "--shards" => {
                config.session_shards = take("--shards")?
                    .parse()
                    .map_err(|_| "--shards needs an integer".to_string())?;
            }
            "--cache-cap" => {
                config.cache_capacity = take("--cache-cap")?
                    .parse()
                    .map_err(|_| "--cache-cap needs an integer".to_string())?;
            }
            "--retain" => {
                config.retain = take("--retain")?
                    .parse()
                    .map_err(|_| "--retain needs an integer".to_string())?;
            }
            "--enable-chaos" => config.enable_chaos = true,
            "--journal" => {
                config.journal = Some(JournalConfig::new(take("--journal")?));
            }
            "--journal-segment" => {
                journal_segment = Some(
                    take("--journal-segment")?
                        .parse::<usize>()
                        .map_err(|_| "--journal-segment needs an integer".to_string())?,
                );
            }
            "--journal-segments" => {
                journal_segments = Some(
                    take("--journal-segments")?
                        .parse::<usize>()
                        .map_err(|_| "--journal-segments needs an integer".to_string())?,
                );
            }
            "--journal-sync-batch" => {
                journal_sync_batch = Some(
                    take("--journal-sync-batch")?
                        .parse::<usize>()
                        .map_err(|_| "--journal-sync-batch needs an integer".to_string())?,
                );
            }
            "--port-file" => port_file = Some(PathBuf::from(take("--port-file")?)),
            other => return Err(format!("unknown flag `{other}` (see --help)")),
        }
    }
    match &mut config.journal {
        Some(journal) => {
            if let Some(n) = journal_segment {
                journal.segment_max_records = n.max(1);
            }
            if let Some(n) = journal_segments {
                journal.max_segments = n.max(1);
            }
            if let Some(n) = journal_sync_batch {
                journal.sync_batch = n.max(1);
            }
            journal.retain = config.retain;
        }
        None if journal_segment.is_some()
            || journal_segments.is_some()
            || journal_sync_batch.is_some() =>
        {
            return Err("--journal-* tuning flags need --journal <dir>".into());
        }
        None => {}
    }
    Ok(Some(Args { config, port_file }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&args) {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("flowc-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    install_signal_handlers();
    let server = match Server::start(args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flowc-serve: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("flowc-serve listening on {}", server.addr());
    if let Some(recovery) = server.recovery() {
        println!(
            "flowc-serve: journal replayed {} records: {} results restored, \
             {} jobs re-enqueued, {} failed replay, {} shed \
             (torn tails truncated: {}, checksum failures: {})",
            recovery.journal.records_replayed,
            recovery.restored_terminal,
            recovery.requeued,
            recovery.failed_replay,
            recovery.shed_on_recovery,
            recovery.journal.torn_tail_truncations,
            recovery.journal.checksum_failures,
        );
    }
    if let Some(path) = &args.port_file {
        // Atomic so a polling harness never reads a half-written port.
        if let Err(e) = flowc_report::write_atomic(path, &server.addr().port().to_string()) {
            eprintln!(
                "flowc-serve: could not write --port-file {}: {e}",
                path.display()
            );
            server.shutdown();
            return ExitCode::FAILURE;
        }
    }

    while !SHUTDOWN.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("flowc-serve: shutdown requested, draining");
    server.shutdown();
    println!("flowc-serve: drained, exiting");
    ExitCode::SUCCESS
}

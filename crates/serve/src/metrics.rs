//! Service metrics: log₂-bucketed latency histograms plus the counters
//! the overload machinery is judged by (sheds, degradations, restarts,
//! cache effectiveness). Everything is rendered to one JSON document for
//! `GET /metrics`.

use std::collections::BTreeMap;
use std::time::Duration;

use flowc_report::Json;

/// A latency histogram with power-of-two microsecond buckets: bucket `i`
/// counts observations in `[2^i, 2^(i+1))` µs. 40 buckets cover ~12 days;
/// the last bucket absorbs anything beyond.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 40],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 40],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        let idx = (63 - us.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// JSON rendering: count/mean/max plus the non-empty buckets keyed by
    /// their lower bound in µs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::Obj(vec![
                    ("ge_us".into(), Json::Num((1u64 << i) as f64)),
                    ("count".into(), Json::Num(c as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("mean_us".into(), Json::Num(self.mean_us() as f64)),
            ("max_us".into(), Json::Num(self.max_us as f64)),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

/// Every counter the service exposes. Plain `u64`s behind the server's
/// metrics mutex — contention is per-request, not per-solver-node.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    /// Submissions received (before any admission decision).
    pub submitted: u64,
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Jobs accepted but moved to a lower ladder rung by admission.
    pub degraded_admission: u64,
    /// Jobs rejected because the queue was full.
    pub shed_queue_full: u64,
    /// Jobs rejected by the open circuit breaker.
    pub shed_breaker: u64,
    /// Jobs rejected because no rung could meet the deadline.
    pub shed_deadline: u64,
    /// Jobs rejected because the server was shutting down.
    pub shed_shutdown: u64,
    /// Jobs that finished with a design and no degradation.
    pub completed_ok: u64,
    /// Jobs that finished with a degraded (but valid) design.
    pub completed_degraded: u64,
    /// Jobs that failed outright (synthesis bug or worker crash).
    pub failed: u64,
    /// Jobs cancelled by the client (queued or mid-flight).
    pub cancelled: u64,
    /// Worker threads restarted after a panic.
    pub worker_restarts: u64,
    /// Circuit-breaker trips (closed → open transitions).
    pub breaker_trips: u64,
    /// `POST /patch` requests received (before any admission decision).
    pub patches: u64,
    /// Patch edits answered from the incremental session's cone cache.
    pub incremental_hits: u64,
    /// Patch edits resolved by permutation-repair relabeling.
    pub incremental_repairs: u64,
    /// Patch edits resolved by a warm-started (but low-match) solve.
    pub incremental_warm_starts: u64,
    /// Patch edits (or whole patch jobs) that fell back to cold solves.
    pub incremental_cold: u64,
}

impl Counters {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("submitted".into(), Json::Num(self.submitted as f64)),
            ("accepted".into(), Json::Num(self.accepted as f64)),
            (
                "degraded_admission".into(),
                Json::Num(self.degraded_admission as f64),
            ),
            (
                "shed_queue_full".into(),
                Json::Num(self.shed_queue_full as f64),
            ),
            ("shed_breaker".into(), Json::Num(self.shed_breaker as f64)),
            ("shed_deadline".into(), Json::Num(self.shed_deadline as f64)),
            ("shed_shutdown".into(), Json::Num(self.shed_shutdown as f64)),
            ("completed_ok".into(), Json::Num(self.completed_ok as f64)),
            (
                "completed_degraded".into(),
                Json::Num(self.completed_degraded as f64),
            ),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("cancelled".into(), Json::Num(self.cancelled as f64)),
            (
                "worker_restarts".into(),
                Json::Num(self.worker_restarts as f64),
            ),
            ("breaker_trips".into(), Json::Num(self.breaker_trips as f64)),
            ("patches".into(), Json::Num(self.patches as f64)),
            (
                "incremental_hits".into(),
                Json::Num(self.incremental_hits as f64),
            ),
            (
                "incremental_repairs".into(),
                Json::Num(self.incremental_repairs as f64),
            ),
            (
                "incremental_warm_starts".into(),
                Json::Num(self.incremental_warm_starts as f64),
            ),
            (
                "incremental_cold".into(),
                Json::Num(self.incremental_cold as f64),
            ),
        ])
    }
}

/// The metrics registry: counters plus named latency histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    /// The service counters.
    pub counters: Counters,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Metrics {
    /// Records a latency observation under `name` (e.g. `"job"`,
    /// `"stage.bdd-build"`, `"rung.heuristic-oct"`).
    pub fn observe(&mut self, name: &'static str, d: Duration) {
        self.histograms.entry(name).or_default().observe(d);
    }

    /// The histogram registered under `name`, if any observation landed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders counters + histograms (gauges are appended by the server,
    /// which owns the queue and sessions).
    pub fn to_json(&self, extra: Vec<(String, Json)>) -> Json {
        let mut fields = vec![("counters".into(), self.counters.to_json())];
        let hists: Vec<(String, Json)> = self
            .histograms
            .iter()
            .map(|(name, h)| ((*name).to_string(), h.to_json()))
            .collect();
        fields.push(("latency".into(), Json::Obj(hists)));
        fields.extend(extra);
        Json::Obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2_micros() {
        let mut h = Histogram::default();
        h.observe(Duration::from_micros(1));
        h.observe(Duration::from_micros(3));
        h.observe(Duration::from_micros(1000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean_us(), (1 + 3 + 1000) / 3);
        let json = h.to_json();
        let buckets = json.get("buckets").and_then(Json::as_arr).unwrap();
        // 1µs → bucket 2^0, 3µs → 2^1, 1000µs → 2^9: three distinct buckets.
        assert_eq!(buckets.len(), 3);
    }

    #[test]
    fn metrics_render_counters_and_histograms() {
        let mut m = Metrics::default();
        m.counters.submitted = 7;
        m.observe("job", Duration::from_millis(2));
        let json = m.to_json(vec![("queue_depth".into(), Json::Num(3.0))]);
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("submitted"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert!(json.get("latency").and_then(|l| l.get("job")).is_some());
        assert_eq!(json.get("queue_depth").and_then(Json::as_u64), Some(3));
    }
}

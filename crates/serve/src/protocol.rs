//! The service's JSON wire protocol: submit-request parsing, typed error
//! bodies, and the little vocabulary of job states.
//!
//! Every error response has the same shape —
//! `{"error": <tag>, "message": <human>, "retry_after_ms"?: <n>}` — so
//! clients can switch on `error` and honor `retry_after_ms` mechanically.

use std::sync::Arc;
use std::time::Duration;

use flowc_baselines::{partitioned_with_tile, unknown_name_error, Backend, MappingBackend};
use flowc_compact::{parse_edit, NetlistEdit};
use flowc_logic::{bench_suite, blif, pla, verilog, Network};
use flowc_report::Json;

use crate::admission::{ServeRung, RUNGS};

/// How the submitted circuit text is to be interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CircuitFormat {
    /// Berkeley BLIF netlist text.
    Blif,
    /// Espresso PLA truth-table text.
    Pla,
    /// The structural Verilog subset.
    Verilog,
    /// `circuit` names a built-in benchmark instead of carrying text.
    Bench,
}

impl CircuitFormat {
    fn parse(name: &str) -> Option<CircuitFormat> {
        match name {
            "blif" => Some(CircuitFormat::Blif),
            "pla" => Some(CircuitFormat::Pla),
            "verilog" | "v" => Some(CircuitFormat::Verilog),
            "bench" => Some(CircuitFormat::Bench),
            _ => None,
        }
    }
}

/// A parsed, validated submission. The network is parsed at submit time
/// so malformed circuits fail fast with `400` instead of inside a worker.
#[derive(Debug, Clone)]
pub struct SubmitSpec {
    /// The circuit, already parsed.
    pub network: Arc<Network>,
    /// Display label (client-chosen or derived from the network name).
    pub label: String,
    /// Trade-off weight γ for the weighted objective.
    pub gamma: f64,
    /// The most ambitious rung the client wants.
    pub rung: ServeRung,
    /// Wall-clock deadline, measured from submission.
    pub deadline: Duration,
    /// Priority 0–9, higher first.
    pub priority: u8,
    /// Chaos directive (only honored when the server enables chaos):
    /// `"panic-worker"` kills the worker thread mid-job.
    pub chaos: Option<String>,
    /// Client-supplied idempotency key: resubmitting the same key
    /// returns the existing job instead of running a second one — also
    /// across a crash/restart when the journal is enabled.
    pub job_key: Option<String>,
    /// Set only for `POST /patch` jobs: the worker routes these through
    /// the incremental edit-session registry instead of cold synthesis.
    /// `network` always holds the authoritative materialized netlist, so
    /// every fallback (and every journal replay) stays correct.
    pub patch: Option<PatchDirective>,
    /// The mapping backend running the job. Non-COMPACT backends bypass
    /// the rung ladder (the rung still shapes the [`Config`] their
    /// synthesis context carries).
    pub backend: Backend,
}

/// The incremental half of a patch job, resolved at admission.
#[derive(Debug, Clone)]
pub struct PatchDirective {
    /// The `job_key` whose netlist the edits were applied to.
    pub lineage: String,
    /// That base netlist (from the base job's spec).
    pub base: Arc<Network>,
    /// The edit stream, in order; already validated against `base`.
    pub edits: Vec<NetlistEdit>,
}

/// A parsed, validated `POST /patch` body.
#[derive(Debug, Clone)]
pub struct PatchRequest {
    /// The lineage: `job_key` of the job whose netlist is edited.
    pub base_key: String,
    /// The key naming the patched state (required — it is what a later
    /// patch chains from, and what makes the resubmit idempotent).
    pub job_key: String,
    /// The edits in the `flowc_compact::parse_edit` grammar, in order.
    pub edits: Vec<NetlistEdit>,
    /// Trade-off weight γ for the weighted objective.
    pub gamma: f64,
    /// The most ambitious rung the client wants.
    pub rung: ServeRung,
    /// Wall-clock deadline, measured from submission.
    pub deadline: Duration,
    /// Priority 0–9, higher first.
    pub priority: u8,
    /// Display label (defaults to `<base_key>+<edit count>`).
    pub label: Option<String>,
}

/// Parses the optional `strategy` field into an admission rung. Both
/// submit and patch bodies share this, and the unknown-name message comes
/// from the same [`unknown_name_error`] helper the [`Backend`] parser
/// uses, so every selection surface rejects with one shape.
fn parse_rung_field(json: &Json) -> Result<ServeRung, String> {
    match json.get("strategy") {
        None => Ok(ServeRung::ExactMip),
        Some(v) => {
            let name = v.as_str().ok_or("`strategy` must be a string")?;
            ServeRung::parse(name).ok_or_else(|| {
                let names: Vec<&str> = RUNGS.iter().map(|r| r.name()).collect();
                unknown_name_error("strategy", name, &names)
            })
        }
    }
}

/// Parses the optional `backend` field (plus the partitioned backend's
/// `tile_rows`/`tile_cols`) into a [`Backend`].
fn parse_backend_field(json: &Json) -> Result<Backend, String> {
    let backend = match json.get("backend") {
        None | Some(Json::Null) => Backend::default(),
        Some(v) => {
            let name = v.as_str().ok_or("`backend` must be a string")?;
            Backend::parse(name)?
        }
    };
    let tile = |field: &str| -> Result<Option<usize>, String> {
        match json.get(field) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("`{field}` must be a number"))?;
                if n == 0 {
                    return Err(format!("`{field}` must be at least 1"));
                }
                Ok(Some(n as usize))
            }
        }
    };
    let (rows, cols) = (tile("tile_rows")?, tile("tile_cols")?);
    match backend {
        Backend::Partitioned(p) => {
            let limits = p.tile;
            Ok(partitioned_with_tile(
                rows.unwrap_or(limits.max_rows),
                cols.unwrap_or(limits.max_cols),
            ))
        }
        other if rows.is_some() || cols.is_some() => Err(format!(
            "`tile_rows`/`tile_cols` only apply to the `partitioned` backend (got `{}`)",
            other.name()
        )),
        other => Ok(other),
    }
}

fn parse_key(json: &Json, field: &str) -> Result<String, String> {
    let key = json
        .get(field)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{field}`"))?;
    if key.is_empty() || key.len() > 128 {
        return Err(format!("`{field}` must be 1..=128 bytes"));
    }
    Ok(key.to_string())
}

/// Parses and validates a `POST /patch` body: an edit stream against the
/// netlist of an earlier job, named by its `job_key`.
///
/// # Errors
///
/// A human-readable message for any malformed field (the server answers
/// `400` with it).
pub fn parse_patch(body: &str) -> Result<PatchRequest, String> {
    let json = Json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let base_key = parse_key(&json, "base_key")?;
    let job_key = parse_key(&json, "job_key")?;
    if job_key == base_key {
        return Err("`job_key` must differ from `base_key` (it names the patched state)".into());
    }
    let lines = json
        .get("edits")
        .and_then(Json::as_arr)
        .ok_or("missing array field `edits` (edit-script lines)")?;
    if lines.is_empty() {
        return Err("`edits` must contain at least one edit".into());
    }
    let mut edits = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        let text = line
            .as_str()
            .ok_or_else(|| format!("`edits[{i}]` must be a string edit-script line"))?;
        edits.push(parse_edit(text).map_err(|e| format!("`edits[{i}]`: {e}"))?);
    }

    let gamma = match json.get("gamma") {
        None => 0.5,
        Some(v) => {
            let g = v.as_f64().ok_or("`gamma` must be a number")?;
            if !(0.0..=1.0).contains(&g) {
                return Err(format!("`gamma` must be in [0, 1], got {g}"));
            }
            g
        }
    };
    let rung = parse_rung_field(&json)?;
    let deadline_ms = match json.get("deadline_ms") {
        None => 30_000,
        Some(v) => v
            .as_u64()
            .ok_or("`deadline_ms` must be a non-negative number")?,
    };
    let priority = match json.get("priority") {
        None => 0,
        Some(v) => {
            let p = v.as_u64().ok_or("`priority` must be a number in 0..=9")?;
            u8::try_from(p.min(9)).expect("capped at 9")
        }
    };
    let label = json.get("label").and_then(Json::as_str).map(str::to_string);

    Ok(PatchRequest {
        base_key,
        job_key,
        edits,
        gamma,
        rung,
        deadline: Duration::from_millis(deadline_ms),
        priority,
        label,
    })
}

/// Parses and validates a `POST /submit` body.
///
/// # Errors
///
/// A human-readable message for any malformed field (the server answers
/// `400` with it).
pub fn parse_submit(body: &str) -> Result<SubmitSpec, String> {
    let json = Json::parse(body).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let circuit = json
        .get("circuit")
        .and_then(Json::as_str)
        .ok_or("missing string field `circuit`")?;
    let format = json
        .get("format")
        .and_then(Json::as_str)
        .ok_or("missing string field `format` (blif|pla|verilog|bench)")?;
    let format = CircuitFormat::parse(format)
        .ok_or_else(|| format!("unknown format `{format}` (blif|pla|verilog|bench)"))?;

    let network = match format {
        CircuitFormat::Blif => blif::parse(circuit).map_err(|e| format!("blif: {e}"))?,
        CircuitFormat::Pla => pla::parse(circuit).map_err(|e| format!("pla: {e}"))?,
        CircuitFormat::Verilog => verilog::parse(circuit).map_err(|e| format!("verilog: {e}"))?,
        CircuitFormat::Bench => bench_suite::by_name(circuit)
            .ok_or_else(|| format!("unknown benchmark `{circuit}`"))?
            .network()
            .map_err(|e| format!("benchmark `{circuit}`: {e}"))?,
    };

    let gamma = match json.get("gamma") {
        None => 0.5,
        Some(v) => {
            let g = v.as_f64().ok_or("`gamma` must be a number")?;
            if !(0.0..=1.0).contains(&g) {
                return Err(format!("`gamma` must be in [0, 1], got {g}"));
            }
            g
        }
    };
    let rung = parse_rung_field(&json)?;
    let deadline_ms = match json.get("deadline_ms") {
        None => 30_000,
        Some(v) => v
            .as_u64()
            .ok_or("`deadline_ms` must be a non-negative number")?,
    };
    let priority = match json.get("priority") {
        None => 0,
        Some(v) => {
            let p = v.as_u64().ok_or("`priority` must be a number in 0..=9")?;
            u8::try_from(p.min(9)).expect("capped at 9")
        }
    };
    let chaos = json.get("chaos").and_then(Json::as_str).map(str::to_string);
    let job_key = match json.get("job_key") {
        None | Some(Json::Null) => None,
        Some(v) => {
            let key = v.as_str().ok_or("`job_key` must be a string")?;
            if key.is_empty() || key.len() > 128 {
                return Err("`job_key` must be 1..=128 bytes".into());
            }
            Some(key.to_string())
        }
    };
    let label = json
        .get("label")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| network.name().to_string());

    Ok(SubmitSpec {
        network: Arc::new(network),
        label,
        gamma,
        rung,
        backend: parse_backend_field(&json)?,
        deadline: Duration::from_millis(deadline_ms),
        priority,
        chaos,
        job_key,
        patch: None,
    })
}

/// The uniform typed error body.
pub fn error_json(tag: &str, message: &str, retry_after: Option<Duration>) -> Json {
    let mut fields = vec![
        ("error".into(), Json::str(tag)),
        ("message".into(), Json::str(message)),
    ];
    if let Some(d) = retry_after {
        fields.push((
            "retry_after_ms".into(),
            Json::Num(d.as_millis().max(1) as f64),
        ));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_submission_with_defaults() {
        let spec = parse_submit(r#"{"circuit": "dec", "format": "bench"}"#).unwrap();
        assert_eq!(spec.rung, ServeRung::ExactMip);
        assert_eq!(spec.deadline, Duration::from_secs(30));
        assert_eq!(spec.priority, 0);
        assert!((spec.gamma - 0.5).abs() < 1e-9);
        assert!(spec.network.num_inputs() > 0);
        assert_eq!(spec.job_key, None);
    }

    #[test]
    fn backend_field_parses_and_defaults() {
        let spec = parse_submit(r#"{"circuit": "dec", "format": "bench"}"#).unwrap();
        assert_eq!(spec.backend.name(), "compact");
        let spec = parse_submit(r#"{"circuit": "dec", "format": "bench", "backend": "staircase"}"#)
            .unwrap();
        assert_eq!(spec.backend.name(), "staircase");
    }

    #[test]
    fn unknown_backend_lists_every_name() {
        let err = parse_submit(r#"{"circuit": "dec", "format": "bench", "backend": "warp"}"#)
            .unwrap_err();
        for name in Backend::NAMES {
            assert!(err.contains(name), "{err} should list {name}");
        }
    }

    #[test]
    fn unknown_strategy_error_comes_from_the_shared_helper() {
        let err = parse_submit(r#"{"circuit": "dec", "format": "bench", "strategy": "warp"}"#)
            .unwrap_err();
        assert_eq!(
            err,
            "unknown strategy `warp` (exact-mip|anytime-mip|heuristic-oct|staircase)"
        );
    }

    #[test]
    fn tile_dimensions_configure_the_partitioned_backend() {
        let body = r#"{
            "circuit": "dec", "format": "bench",
            "backend": "partitioned", "tile_rows": 12, "tile_cols": 10
        }"#;
        let spec = parse_submit(body).unwrap();
        match &spec.backend {
            Backend::Partitioned(p) => {
                assert_eq!(p.tile.max_rows, 12);
                assert_eq!(p.tile.max_cols, 10);
            }
            other => panic!("expected partitioned, got {}", other.name()),
        }
        let err = parse_submit(
            r#"{"circuit": "dec", "format": "bench", "backend": "compact", "tile_rows": 8}"#,
        )
        .unwrap_err();
        assert!(err.contains("partitioned"), "{err}");
        let err = parse_submit(
            r#"{"circuit": "dec", "format": "bench", "backend": "partitioned", "tile_rows": 0}"#,
        )
        .unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
    }

    #[test]
    fn job_keys_parse_and_validate() {
        let spec =
            parse_submit(r#"{"circuit": "dec", "format": "bench", "job_key": "run-7"}"#).unwrap();
        assert_eq!(spec.job_key.as_deref(), Some("run-7"));
        for bad in [
            r#"{"circuit": "dec", "format": "bench", "job_key": 7}"#,
            r#"{"circuit": "dec", "format": "bench", "job_key": ""}"#,
        ] {
            assert!(parse_submit(bad).unwrap_err().contains("job_key"), "{bad}");
        }
    }

    #[test]
    fn parses_explicit_fields_and_pla_text() {
        let body = r#"{
            "circuit": ".i 2\n.o 1\n11 1\n.e\n",
            "format": "pla",
            "gamma": 0.25,
            "strategy": "heuristic-oct",
            "deadline_ms": 1500,
            "priority": 7,
            "label": "and2"
        }"#;
        let spec = parse_submit(body).unwrap();
        assert_eq!(spec.rung, ServeRung::HeuristicOct);
        assert_eq!(spec.deadline, Duration::from_millis(1500));
        assert_eq!(spec.priority, 7);
        assert_eq!(spec.label, "and2");
        assert_eq!(spec.network.num_inputs(), 2);
    }

    #[test]
    fn rejects_malformed_submissions_with_messages() {
        for (body, needle) in [
            ("not json", "valid JSON"),
            (r#"{"format": "blif"}"#, "circuit"),
            (r#"{"circuit": "x", "format": "doc"}"#, "unknown format"),
            (
                r#"{"circuit": "no-such", "format": "bench"}"#,
                "unknown benchmark",
            ),
            (
                r#"{"circuit": "dec", "format": "bench", "gamma": 1.5}"#,
                "gamma",
            ),
            (
                r#"{"circuit": "dec", "format": "bench", "strategy": "warp"}"#,
                "unknown strategy",
            ),
        ] {
            let err = parse_submit(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn parses_a_patch_with_edit_script_lines() {
        let body = r#"{
            "base_key": "run-7",
            "job_key": "run-8",
            "edits": ["add t and a b", "retarget 0 t"],
            "gamma": 0.25,
            "strategy": "staircase",
            "deadline_ms": 1500,
            "priority": 3
        }"#;
        let req = parse_patch(body).unwrap();
        assert_eq!(req.base_key, "run-7");
        assert_eq!(req.job_key, "run-8");
        assert_eq!(req.edits.len(), 2);
        assert_eq!(req.rung, ServeRung::Staircase);
        assert_eq!(req.deadline, Duration::from_millis(1500));
        assert_eq!(req.priority, 3);
        assert!((req.gamma - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rejects_malformed_patches_with_messages() {
        for (body, needle) in [
            ("not json", "valid JSON"),
            (r#"{"job_key": "b", "edits": ["remove g"]}"#, "base_key"),
            (r#"{"base_key": "a", "edits": ["remove g"]}"#, "job_key"),
            (
                r#"{"base_key": "a", "job_key": "a", "edits": ["remove g"]}"#,
                "differ",
            ),
            (r#"{"base_key": "a", "job_key": "b"}"#, "edits"),
            (
                r#"{"base_key": "a", "job_key": "b", "edits": []}"#,
                "at least one",
            ),
            (
                r#"{"base_key": "a", "job_key": "b", "edits": ["warp g"]}"#,
                "edits[0]",
            ),
            (
                r#"{"base_key": "a", "job_key": "b", "edits": ["remove g"], "gamma": 2}"#,
                "gamma",
            ),
        ] {
            let err = parse_patch(body).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn error_body_is_uniform() {
        let e = error_json("queue_full", "try later", Some(Duration::from_millis(250)));
        assert_eq!(e.get("error").and_then(Json::as_str), Some("queue_full"));
        assert_eq!(e.get("retry_after_ms").and_then(Json::as_u64), Some(250));
        assert!(error_json("x", "y", None).get("retry_after_ms").is_none());
    }
}

//! The job table: every submitted job's lifecycle, budget, and result.
//!
//! Terminal entries are retained for result pickup but only up to a
//! bound — the oldest finished jobs are evicted first, so a long-running
//! server's memory is bounded by `queue + running + retained`, never by
//! total jobs served.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use flowc_budget::{Budget, CancelHandle};
use flowc_report::Json;

use crate::admission::ServeRung;
use crate::protocol::SubmitSpec;

/// Lifecycle of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// A worker is synthesizing it right now.
    Running,
    /// Finished with a design (possibly degraded; see the result body).
    Done,
    /// Failed outright (synthesis bug or worker crash).
    Failed,
    /// Cancelled before completion (queued-cancel, or mid-flight cancel
    /// that aborted before any design shipped).
    Cancelled,
    /// Dropped unstarted because the server shut down.
    Shed,
}

impl JobState {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Shed => "shed",
        }
    }

    fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's record.
#[derive(Debug)]
pub struct JobEntry {
    /// The job id.
    pub id: u64,
    /// The validated submission.
    pub spec: SubmitSpec,
    /// The rung admission assigned (≤ the requested rung).
    pub rung: ServeRung,
    /// Whether admission degraded the requested rung.
    pub admission_degraded: bool,
    /// The job budget: deadline fixed at submission, shared cancel flag.
    pub budget: Budget,
    /// Cancels the budget (fires mid-solve aborts).
    pub cancel: CancelHandle,
    /// Set once a client asked to cancel.
    pub cancel_requested: bool,
    /// Lifecycle state.
    pub state: JobState,
    /// Submission instant (queue-wait measurement).
    pub submitted: Instant,
    /// The result body (`Done`) or error body (`Failed`/`Cancelled`).
    pub outcome: Option<Json>,
}

#[derive(Debug, Default)]
struct TableInner {
    jobs: HashMap<u64, JobEntry>,
    /// Terminal job ids, oldest first, for bounded retention.
    finished: Vec<u64>,
}

/// The table: a mutex-guarded map plus FIFO eviction of finished jobs.
#[derive(Debug)]
pub struct JobTable {
    inner: Mutex<TableInner>,
    retain: usize,
}

impl JobTable {
    /// A table retaining at most `retain` finished jobs (min 1).
    pub fn new(retain: usize) -> Self {
        JobTable {
            inner: Mutex::new(TableInner::default()),
            retain: retain.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts a freshly admitted job (state `Queued`).
    pub fn insert(&self, entry: JobEntry) {
        self.lock().jobs.insert(entry.id, entry);
    }

    /// Claims `id` for a worker: flips `Queued` → `Running` and hands the
    /// worker what it needs. `None` when the job is gone or was cancelled
    /// while queued (the worker just skips it).
    pub fn claim_for_run(&self, id: u64) -> Option<(SubmitSpec, ServeRung, bool, Budget)> {
        let mut inner = self.lock();
        let entry = inner.jobs.get_mut(&id)?;
        if entry.state != JobState::Queued || entry.cancel_requested {
            return None;
        }
        entry.state = JobState::Running;
        Some((
            entry.spec.clone(),
            entry.rung,
            entry.admission_degraded,
            entry.budget.clone(),
        ))
    }

    /// Moves a job to a terminal state with its outcome body.
    pub fn finish(&self, id: u64, state: JobState, outcome: Json) {
        debug_assert!(state.is_terminal());
        let mut inner = self.lock();
        if let Some(entry) = inner.jobs.get_mut(&id) {
            entry.state = state;
            entry.outcome = Some(outcome);
            inner.finished.push(id);
            while inner.finished.len() > self.retain {
                let oldest = inner.finished.remove(0);
                inner.jobs.remove(&oldest);
            }
        }
    }

    /// Requests cancellation: fires the budget's cancel flag; a queued job
    /// is finished as `Cancelled` immediately (the worker will skip it), a
    /// running one aborts cooperatively and reports through its worker.
    /// Returns the state *after* the request, or `None` if unknown.
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut inner = self.lock();
        let entry = inner.jobs.get_mut(&id)?;
        if entry.state.is_terminal() {
            return Some(entry.state.clone());
        }
        entry.cancel_requested = true;
        entry.cancel.cancel();
        if entry.state == JobState::Queued {
            entry.state = JobState::Cancelled;
            entry.outcome = Some(Json::Obj(vec![(
                "cancelled_while".into(),
                Json::str("queued"),
            )]));
            inner.finished.push(id);
            while inner.finished.len() > self.retain {
                let oldest = inner.finished.remove(0);
                inner.jobs.remove(&oldest);
            }
        }
        Some(inner.jobs[&id].state.clone())
    }

    /// Whether a cancel was requested for `id` (worker-side check).
    pub fn cancel_requested(&self, id: u64) -> bool {
        self.lock()
            .jobs
            .get(&id)
            .is_some_and(|e| e.cancel_requested)
    }

    /// A status snapshot: `(state, queue-age, label)`.
    pub fn status(&self, id: u64) -> Option<(JobState, Instant, String)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|e| (e.state.clone(), e.submitted, e.spec.label.clone()))
    }

    /// The outcome body of a terminal job; `None` while pending or when
    /// the id is unknown/evicted.
    pub fn outcome(&self, id: u64) -> Option<(JobState, Json)> {
        let inner = self.lock();
        inner.jobs.get(&id).and_then(|e| {
            e.state
                .is_terminal()
                .then(|| (e.state.clone(), e.outcome.clone().unwrap_or(Json::Null)))
        })
    }

    /// Jobs currently in non-terminal states (gauge for `/metrics`).
    pub fn live_count(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|e| !e.state.is_terminal())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entry(id: u64) -> JobEntry {
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(30));
        let cancel = budget.cancel_handle();
        let spec =
            crate::protocol::parse_submit(r#"{"circuit": "dec", "format": "bench"}"#).unwrap();
        JobEntry {
            id,
            spec,
            rung: ServeRung::HeuristicOct,
            admission_degraded: false,
            budget,
            cancel,
            cancel_requested: false,
            state: JobState::Queued,
            submitted: Instant::now(),
            outcome: None,
        }
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let t = JobTable::new(8);
        t.insert(entry(1));
        assert_eq!(t.status(1).unwrap().0, JobState::Queued);
        let claim = t.claim_for_run(1).unwrap();
        assert_eq!(claim.1, ServeRung::HeuristicOct);
        assert_eq!(t.status(1).unwrap().0, JobState::Running);
        assert!(t.outcome(1).is_none());
        t.finish(1, JobState::Done, Json::Obj(vec![]));
        assert_eq!(t.outcome(1).unwrap().0, JobState::Done);
        // Claiming a terminal job is refused.
        assert!(t.claim_for_run(1).is_none());
    }

    #[test]
    fn queued_cancel_is_immediate_and_skips_the_worker() {
        let t = JobTable::new(8);
        t.insert(entry(1));
        assert_eq!(t.cancel(1), Some(JobState::Cancelled));
        // The budget's cancel flag fired too.
        let (state, _) = t.outcome(1).unwrap();
        assert_eq!(state, JobState::Cancelled);
        assert!(t.claim_for_run(1).is_none());
        assert_eq!(t.cancel(99), None);
    }

    #[test]
    fn running_cancel_fires_the_budget() {
        let t = JobTable::new(8);
        t.insert(entry(1));
        let (_, _, _, budget) = t.claim_for_run(1).unwrap();
        assert_eq!(t.cancel(1), Some(JobState::Running));
        assert!(budget.is_cancelled());
        assert!(t.cancel_requested(1));
    }

    #[test]
    fn finished_jobs_are_evicted_fifo() {
        let t = JobTable::new(2);
        for id in 1..=4 {
            t.insert(entry(id));
            t.claim_for_run(id).unwrap();
            t.finish(id, JobState::Done, Json::Obj(vec![]));
        }
        assert!(t.outcome(1).is_none());
        assert!(t.outcome(2).is_none());
        assert!(t.outcome(3).is_some());
        assert!(t.outcome(4).is_some());
    }
}

//! The job table: every submitted job's lifecycle, budget, and result.
//!
//! Terminal entries are retained for result pickup but only up to a
//! bound — the oldest finished jobs are evicted first, so a long-running
//! server's memory is bounded by `queue + running + retained`, never by
//! total jobs served.
//!
//! Jobs may carry a client-supplied **job key**: inserting a second
//! entry with a key already present dedupes to the existing job, which
//! is what makes resubmission idempotent — within one process lifetime
//! and, when the journal is on, across a crash/restart (replay restores
//! the key index along with the jobs).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use flowc_budget::{Budget, CancelHandle};
use flowc_logic::Network;
use flowc_report::Json;

use crate::admission::ServeRung;
use crate::protocol::SubmitSpec;

/// Lifecycle of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// A worker is synthesizing it right now.
    Running,
    /// Finished with a design (possibly degraded; see the result body).
    Done,
    /// Failed outright (synthesis bug or worker crash).
    Failed,
    /// Cancelled before completion (queued-cancel, or mid-flight cancel
    /// that aborted before any design shipped).
    Cancelled,
    /// Dropped unstarted because the server shut down.
    Shed,
}

impl JobState {
    /// Stable wire name.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Shed => "shed",
        }
    }

    /// Parses a wire name back to a state (journal replay).
    pub fn parse(name: &str) -> Option<JobState> {
        match name {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "shed" => Some(JobState::Shed),
            _ => None,
        }
    }

    /// Whether this state is final.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One job's record.
#[derive(Debug)]
pub struct JobEntry {
    /// The job id.
    pub id: u64,
    /// Client-supplied idempotency key, if any.
    pub job_key: Option<String>,
    /// Display label (kept outside the spec so terminal jobs restored
    /// from the journal — which have no spec — still report it).
    pub label: String,
    /// The validated submission. `None` only for terminal jobs restored
    /// from the journal: their circuit is gone, their outcome remains.
    pub spec: Option<SubmitSpec>,
    /// The rung admission assigned (≤ the requested rung).
    pub rung: ServeRung,
    /// Whether admission degraded the requested rung.
    pub admission_degraded: bool,
    /// The job budget: deadline fixed at submission, shared cancel flag.
    pub budget: Budget,
    /// Cancels the budget (fires mid-solve aborts).
    pub cancel: CancelHandle,
    /// Set once a client asked to cancel.
    pub cancel_requested: bool,
    /// Lifecycle state.
    pub state: JobState,
    /// Submission instant (queue-wait measurement).
    pub submitted: Instant,
    /// The result body (`Done`) or error body (`Failed`/`Cancelled`).
    pub outcome: Option<Json>,
}

/// What [`JobTable::insert`] did with the entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Insert {
    /// The entry went in as a new job.
    Inserted,
    /// An entry with the same job key already exists (in any state):
    /// the new entry was dropped; this is the surviving job's id. The
    /// check and the insert happen under one lock, so two racing
    /// submissions with the same key cannot both win.
    Duplicate(u64),
}

#[derive(Debug, Default)]
struct TableInner {
    jobs: HashMap<u64, JobEntry>,
    /// Terminal job ids, oldest first, for bounded retention.
    finished: Vec<u64>,
    /// Job-key → id index for idempotent resubmission.
    by_key: HashMap<String, u64>,
}

impl TableInner {
    fn evict_excess(&mut self, retain: usize) {
        while self.finished.len() > retain {
            let oldest = self.finished.remove(0);
            if let Some(entry) = self.jobs.remove(&oldest) {
                if let Some(key) = entry.job_key {
                    self.by_key.remove(&key);
                }
            }
        }
    }
}

/// The table: a mutex-guarded map plus FIFO eviction of finished jobs.
#[derive(Debug)]
pub struct JobTable {
    inner: Mutex<TableInner>,
    retain: usize,
}

impl JobTable {
    /// A table retaining at most `retain` finished jobs (min 1).
    pub fn new(retain: usize) -> Self {
        JobTable {
            inner: Mutex::new(TableInner::default()),
            retain: retain.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TableInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Inserts a job, deduplicating on the job key: if the key is
    /// already present the entry is dropped and the existing job's id
    /// returned. Entries already terminal (journal restores) join the
    /// retention FIFO immediately.
    pub fn insert(&self, entry: JobEntry) -> Insert {
        let mut inner = self.lock();
        if let Some(key) = &entry.job_key {
            if let Some(&existing) = inner.by_key.get(key) {
                return Insert::Duplicate(existing);
            }
            inner.by_key.insert(key.clone(), entry.id);
        }
        let id = entry.id;
        let terminal = entry.state.is_terminal();
        inner.jobs.insert(id, entry);
        if terminal {
            inner.finished.push(id);
            inner.evict_excess(self.retain);
        }
        Insert::Inserted
    }

    /// Claims `id` for a worker: flips `Queued` → `Running` and hands the
    /// worker what it needs. `None` when the job is gone, was cancelled
    /// while queued, or has no spec (the worker just skips it).
    pub fn claim_for_run(&self, id: u64) -> Option<(SubmitSpec, ServeRung, bool, Budget)> {
        let mut inner = self.lock();
        let entry = inner.jobs.get_mut(&id)?;
        if entry.state != JobState::Queued || entry.cancel_requested {
            return None;
        }
        let spec = entry.spec.clone()?;
        entry.state = JobState::Running;
        Some((
            spec,
            entry.rung,
            entry.admission_degraded,
            entry.budget.clone(),
        ))
    }

    /// Moves a job to a terminal state with its outcome body. Returns
    /// whether the transition happened (`false`: unknown id or already
    /// terminal — callers use this to avoid double-journaling).
    pub fn finish(&self, id: u64, state: JobState, outcome: Json) -> bool {
        debug_assert!(state.is_terminal());
        let mut inner = self.lock();
        let Some(entry) = inner.jobs.get_mut(&id) else {
            return false;
        };
        if entry.state.is_terminal() {
            return false;
        }
        entry.state = state;
        entry.outcome = Some(outcome);
        inner.finished.push(id);
        inner.evict_excess(self.retain);
        true
    }

    /// Requests cancellation: fires the budget's cancel flag; a queued job
    /// is finished as `Cancelled` immediately (the worker will skip it), a
    /// running one aborts cooperatively and reports through its worker.
    /// Returns the state *after* the request plus whether *this call*
    /// made the job terminal (so the caller journals the transition
    /// exactly once), or `None` if unknown.
    pub fn cancel(&self, id: u64) -> Option<(JobState, bool)> {
        let mut inner = self.lock();
        let entry = inner.jobs.get_mut(&id)?;
        if entry.state.is_terminal() {
            return Some((entry.state.clone(), false));
        }
        entry.cancel_requested = true;
        entry.cancel.cancel();
        let mut newly_terminal = false;
        if entry.state == JobState::Queued {
            entry.state = JobState::Cancelled;
            entry.outcome = Some(Json::Obj(vec![(
                "cancelled_while".into(),
                Json::str("queued"),
            )]));
            inner.finished.push(id);
            inner.evict_excess(self.retain);
            newly_terminal = true;
        }
        Some((inner.jobs[&id].state.clone(), newly_terminal))
    }

    /// Whether a cancel was requested for `id` (worker-side check).
    pub fn cancel_requested(&self, id: u64) -> bool {
        self.lock()
            .jobs
            .get(&id)
            .is_some_and(|e| e.cancel_requested)
    }

    /// A status snapshot: `(state, queue-age, label)`.
    pub fn status(&self, id: u64) -> Option<(JobState, Instant, String)> {
        let inner = self.lock();
        inner
            .jobs
            .get(&id)
            .map(|e| (e.state.clone(), e.submitted, e.label.clone()))
    }

    /// The outcome body of a terminal job; `None` while pending or when
    /// the id is unknown/evicted.
    pub fn outcome(&self, id: u64) -> Option<(JobState, Json)> {
        let inner = self.lock();
        inner.jobs.get(&id).and_then(|e| {
            e.state
                .is_terminal()
                .then(|| (e.state.clone(), e.outcome.clone().unwrap_or(Json::Null)))
        })
    }

    /// Resolves a job key to `(id, circuit)` — the lineage lookup behind
    /// `POST /patch`. The circuit is `None` for journal-restored terminal
    /// jobs, whose spec (and netlist) did not survive the crash.
    pub fn lookup_key(&self, key: &str) -> Option<(u64, Option<Arc<Network>>)> {
        let inner = self.lock();
        let &id = inner.by_key.get(key)?;
        let entry = inner.jobs.get(&id)?;
        Some((id, entry.spec.as_ref().map(|s| Arc::clone(&s.network))))
    }

    /// Jobs currently in non-terminal states (gauge for `/metrics`).
    pub fn live_count(&self) -> usize {
        self.lock()
            .jobs
            .values()
            .filter(|e| !e.state.is_terminal())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn entry(id: u64) -> JobEntry {
        keyed_entry(id, None)
    }

    fn keyed_entry(id: u64, key: Option<&str>) -> JobEntry {
        let budget = Budget::unlimited().with_deadline(Duration::from_secs(30));
        let cancel = budget.cancel_handle();
        let spec =
            crate::protocol::parse_submit(r#"{"circuit": "dec", "format": "bench"}"#).unwrap();
        JobEntry {
            id,
            job_key: key.map(str::to_string),
            label: spec.label.clone(),
            spec: Some(spec),
            rung: ServeRung::HeuristicOct,
            admission_degraded: false,
            budget,
            cancel,
            cancel_requested: false,
            state: JobState::Queued,
            submitted: Instant::now(),
            outcome: None,
        }
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let t = JobTable::new(8);
        assert_eq!(t.insert(entry(1)), Insert::Inserted);
        assert_eq!(t.status(1).unwrap().0, JobState::Queued);
        let claim = t.claim_for_run(1).unwrap();
        assert_eq!(claim.1, ServeRung::HeuristicOct);
        assert_eq!(t.status(1).unwrap().0, JobState::Running);
        assert!(t.outcome(1).is_none());
        assert!(t.finish(1, JobState::Done, Json::Obj(vec![])));
        assert_eq!(t.outcome(1).unwrap().0, JobState::Done);
        // Claiming or re-finishing a terminal job is refused.
        assert!(t.claim_for_run(1).is_none());
        assert!(!t.finish(1, JobState::Failed, Json::Null));
        assert_eq!(t.outcome(1).unwrap().0, JobState::Done);
    }

    #[test]
    fn queued_cancel_is_immediate_and_skips_the_worker() {
        let t = JobTable::new(8);
        t.insert(entry(1));
        assert_eq!(t.cancel(1), Some((JobState::Cancelled, true)));
        // A second cancel is a no-op, not a second terminal transition.
        assert_eq!(t.cancel(1), Some((JobState::Cancelled, false)));
        // The budget's cancel flag fired too.
        let (state, _) = t.outcome(1).unwrap();
        assert_eq!(state, JobState::Cancelled);
        assert!(t.claim_for_run(1).is_none());
        assert_eq!(t.cancel(99), None);
    }

    #[test]
    fn running_cancel_fires_the_budget() {
        let t = JobTable::new(8);
        t.insert(entry(1));
        let (_, _, _, budget) = t.claim_for_run(1).unwrap();
        assert_eq!(t.cancel(1), Some((JobState::Running, false)));
        assert!(budget.is_cancelled());
        assert!(t.cancel_requested(1));
    }

    #[test]
    fn finished_jobs_are_evicted_fifo() {
        let t = JobTable::new(2);
        for id in 1..=4 {
            t.insert(entry(id));
            t.claim_for_run(id).unwrap();
            t.finish(id, JobState::Done, Json::Obj(vec![]));
        }
        assert!(t.outcome(1).is_none());
        assert!(t.outcome(2).is_none());
        assert!(t.outcome(3).is_some());
        assert!(t.outcome(4).is_some());
    }

    #[test]
    fn job_keys_dedupe_in_every_state_and_free_on_eviction() {
        let t = JobTable::new(1);
        assert_eq!(t.insert(keyed_entry(1, Some("k"))), Insert::Inserted);
        // Queued, running, and terminal duplicates all resolve to job 1.
        assert_eq!(t.insert(keyed_entry(2, Some("k"))), Insert::Duplicate(1));
        t.claim_for_run(1).unwrap();
        assert_eq!(t.insert(keyed_entry(3, Some("k"))), Insert::Duplicate(1));
        t.finish(1, JobState::Done, Json::Obj(vec![]));
        assert_eq!(t.insert(keyed_entry(4, Some("k"))), Insert::Duplicate(1));
        // Distinct keys and keyless entries are independent.
        assert_eq!(t.insert(keyed_entry(5, Some("other"))), Insert::Inserted);
        assert_eq!(t.insert(keyed_entry(6, None)), Insert::Inserted);
        // Evicting job 1 (retain=1) frees its key for reuse.
        t.finish(5, JobState::Done, Json::Obj(vec![]));
        assert!(t.outcome(1).is_none(), "job 1 evicted");
        assert_eq!(t.insert(keyed_entry(7, Some("k"))), Insert::Inserted);
    }

    #[test]
    fn lookup_key_resolves_lineage_and_spec_presence() {
        let t = JobTable::new(8);
        t.insert(keyed_entry(1, Some("base")));
        let (id, net) = t.lookup_key("base").unwrap();
        assert_eq!(id, 1);
        assert!(net.is_some(), "live jobs expose their circuit");
        assert!(t.lookup_key("missing").is_none());
    }

    #[test]
    fn restored_terminal_entries_serve_results_without_a_spec() {
        let t = JobTable::new(8);
        let budget = Budget::unlimited();
        let cancel = budget.cancel_handle();
        t.insert(JobEntry {
            id: 9,
            job_key: Some("k-9".into()),
            label: "restored".into(),
            spec: None,
            rung: ServeRung::ExactMip,
            admission_degraded: false,
            budget,
            cancel,
            cancel_requested: false,
            state: JobState::Done,
            submitted: Instant::now(),
            outcome: Some(Json::Obj(vec![("rows".into(), Json::Num(4.0))])),
        });
        let (state, outcome) = t.outcome(9).unwrap();
        assert_eq!(state, JobState::Done);
        assert_eq!(outcome.get("rows").and_then(Json::as_u64), Some(4));
        assert_eq!(t.status(9).unwrap().2, "restored");
        assert!(t.claim_for_run(9).is_none());
        assert_eq!(t.insert(keyed_entry(10, Some("k-9"))), Insert::Duplicate(9));
        let (id, net) = t.lookup_key("k-9").unwrap();
        assert_eq!(id, 9);
        assert!(net.is_none(), "journal-restored jobs lost their circuit");
    }

    #[test]
    fn state_names_round_trip() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Failed,
            JobState::Cancelled,
            JobState::Shed,
        ] {
            assert_eq!(JobState::parse(s.name()), Some(s));
        }
        assert_eq!(JobState::parse("warp"), None);
    }
}

//! `flowc-serve`: a long-running, fault-contained synthesis service over
//! the COMPACT pipeline.
//!
//! The service turns one-shot CLI synthesis into an HTTP/1.1 job API
//! (hand-rolled over [`std::net`]; no dependencies) built for graceful
//! overload behavior:
//!
//! - **Bounded priority queue** ([`queue`]): a full queue rejects with
//!   `429 queue_full` + `retry_after_ms` — never unbounded buffering.
//! - **Deadline-aware admission** ([`admission`]): per-rung EWMA latency
//!   estimates decide up front whether a job's deadline is feasible at
//!   the requested degradation-ladder rung, at a cheaper rung (the job is
//!   admitted degraded), or not at all (`422 deadline_infeasible`).
//! - **Circuit breaker** ([`breaker`]): failure-rate or queue-depth trips
//!   flip the server to reject-fast (`503 breaker_open`); a half-open
//!   probe decides recovery, with exponential cooldown on repeated trips.
//! - **Fault containment** ([`server`]): panic-isolated workers restarted
//!   by a supervisor with exponential backoff; a crash fails only the
//!   in-flight job (typed `worker_crashed`), never the service.
//! - **End-to-end cancellation**: every job owns a deadline-bearing
//!   [`flowc_budget::Budget`]; `POST /cancel` fires its cancel flag and
//!   the solvers abort mid-flight within milliseconds.
//! - **Shared artifact cache**: jobs land on one of N session shards by
//!   BDD content key, so identical circuits reuse BDD/graph artifacts
//!   across requests (hit rates exported at `/metrics`).
//! - **Crash durability** ([`journal`]): with `--journal <dir>`, every
//!   job lifecycle transition is written ahead to a CRC32-framed,
//!   segment-rotated log; a restarted server replays it (tolerating a
//!   torn tail), restores finished results, re-enqueues interrupted
//!   jobs, and deduplicates resubmission by client-supplied job key.
//!
//! Endpoints: `POST /submit`, `GET /status?id=`, `GET /result?id=`,
//! `POST /cancel`, `GET /metrics`, `GET /healthz`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod client;
pub mod http;
pub mod jobs;
pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use admission::{Admission, Infeasible, LatencyModel, ServeRung};
pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use jobs::JobState;
pub use journal::{Journal, JournalConfig, JournalStats};
pub use protocol::{parse_patch, parse_submit, PatchDirective, PatchRequest, SubmitSpec};
pub use server::{Recovery, ServeConfig, Server};

//! The service itself: acceptor, worker pool, supervisor, and the
//! endpoint handlers, wired around the overload machinery
//! ([`crate::admission`], [`crate::breaker`], [`crate::queue`]).
//!
//! Fault containment layers, outermost first:
//!
//! 1. **Admission** — a job is accepted, degraded to a cheaper ladder
//!    rung, or rejected with a typed retry-after error *before* it can
//!    occupy memory. The queue is bounded; nothing ever waits unboundedly.
//! 2. **Circuit breaker** — failure-rate or queue-depth trips switch the
//!    server to reject-fast; a half-open probe decides recovery.
//! 3. **Worker isolation** — each job runs on a worker thread whose panic
//!    kills only that job; the supervisor restarts the worker with
//!    exponential backoff and fails the in-flight job with a typed error.
//! 4. **Budget enforcement** — every job carries a deadline-bearing
//!    [`Budget`] whose cancel flag `POST /cancel` fires; the pipeline
//!    aborts mid-solve and ships a degraded-but-valid design when it can.

use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flowc_baselines::{Backend, MappingBackend, SynthesisCtx};
use flowc_budget::Budget;
use flowc_compact::pipeline::Config;
use flowc_compact::session::bdd_key;
use flowc_compact::{
    synthesize_in_budgeted, CompactError, CompactResult, EditSession, EditSessionConfig,
    EditableNetlist, Session, SessionConfig, StageKind,
};
use flowc_logic::blif;
use flowc_report::Json;

use crate::admission::{LatencyModel, ServeRung};
use crate::breaker::{Breaker, BreakerConfig, BreakerState};
use crate::http::{read_request, write_response, Request};
use crate::jobs::{Insert, JobEntry, JobState, JobTable};
use crate::journal::{Journal, JournalConfig, JournalStats, Record};
use crate::metrics::Metrics;
use crate::protocol::{error_json, parse_patch, parse_submit, PatchDirective, SubmitSpec};
use crate::queue::{JobQueue, QueuedJob};

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Synthesis worker threads.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Artifact-cache shards (one [`Session`] each), keyed by BDD key.
    pub session_shards: usize,
    /// Artifacts cached per stage per shard.
    pub cache_capacity: usize,
    /// Finished jobs retained for result pickup.
    pub retain: usize,
    /// Honor the `chaos` job field (test/CI only: a chaos job kills its
    /// worker thread to exercise the supervisor).
    pub enable_chaos: bool,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Write-ahead journal: `Some` makes every job lifecycle durable and
    /// replays it on startup. `None` (the default) keeps the PR-5
    /// memory-only behavior.
    pub journal: Option<JournalConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            session_shards: 4,
            cache_capacity: 64,
            retain: 1024,
            enable_chaos: false,
            breaker: BreakerConfig::default(),
            journal: None,
        }
    }
}

/// What startup recovery did (populated only when the journal is on).
#[derive(Debug, Clone, Copy, Default)]
pub struct Recovery {
    /// Terminal jobs restored with their outcomes for result pickup.
    pub restored_terminal: usize,
    /// Interrupted (queued/running) jobs re-enqueued for execution.
    pub requeued: usize,
    /// Replayed jobs whose submit body no longer parses (failed typed).
    pub failed_replay: usize,
    /// Replayed jobs shed because the queue filled during recovery.
    pub shed_on_recovery: usize,
    /// Journal replay counters (torn tails, checksum failures, records).
    pub journal: JournalStats,
}

/// Which worker is running which job (crash attribution).
#[derive(Debug, Default)]
struct WorkerSlot {
    current: Mutex<Option<u64>>,
}

/// One retained incremental lineage: the edit session whose netlist is
/// the state named by a job key, plus the fingerprint a reuse must match
/// (same cone key, same γ, same rung — anything else gets a fresh
/// session, never a silently diverged one).
struct LineageEntry {
    cone_key: u64,
    gamma_bits: u64,
    rung: ServeRung,
    session: EditSession,
}

/// The bounded worker-side registry of live edit sessions, keyed by the
/// job key naming each session's current netlist state. A patch *takes*
/// its base session (two racing patches on one lineage: one continues
/// incrementally, the other rebuilds from the base netlist) and
/// re-registers the advanced session under the patch's own key.
struct EditRegistry {
    entries: HashMap<String, LineageEntry>,
    order: VecDeque<String>,
    capacity: usize,
}

impl EditRegistry {
    fn new(capacity: usize) -> EditRegistry {
        EditRegistry {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Removes and returns the session at `key` iff its fingerprint
    /// matches; a mismatched entry stays (a later patch may still want it).
    fn take(
        &mut self,
        key: &str,
        cone_key: u64,
        gamma_bits: u64,
        rung: ServeRung,
    ) -> Option<EditSession> {
        match self.entries.get(key) {
            Some(e) if e.cone_key == cone_key && e.gamma_bits == gamma_bits && e.rung == rung => {}
            _ => return None,
        }
        self.order.retain(|k| k != key);
        self.entries.remove(key).map(|e| e.session)
    }

    fn insert(&mut self, key: String, entry: LineageEntry) {
        if self.entries.insert(key.clone(), entry).is_some() {
            self.order.retain(|k| *k != key);
        }
        self.order.push_back(key);
        while self.entries.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    self.entries.remove(&old);
                }
                None => break,
            }
        }
    }
}

/// Shared server state: everything the acceptor, handlers, workers, and
/// supervisor touch.
struct ServerInner {
    config: ServeConfig,
    queue: JobQueue,
    jobs: JobTable,
    sessions: Vec<Arc<Session>>,
    metrics: Mutex<Metrics>,
    model: Mutex<LatencyModel>,
    breaker: Mutex<Breaker>,
    slots: Vec<WorkerSlot>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
    journal: Option<Journal>,
    recovery: Option<Recovery>,
    edit_sessions: Mutex<EditRegistry>,
    /// The shared disk labeling cache directory (journal mode only);
    /// edit sessions write through it too, so incremental labelings
    /// survive crashes with the rest of the cache.
    disk_cache: Option<PathBuf>,
}

/// Terminal transition + journal append, in that order (the journal is
/// a lower bound on in-memory state). Returns whether this call made
/// the transition; duplicates journal nothing.
fn finish_job(inner: &ServerInner, id: u64, state: JobState, outcome: Json) -> bool {
    let newly = inner.jobs.finish(id, state.clone(), outcome.clone());
    if newly {
        if let Some(journal) = &inner.journal {
            journal.append(&Record::Terminal {
                id,
                state: state.name().into(),
                outcome,
            });
        }
    }
    newly
}

/// A running server. Dropping it without [`Server::shutdown`] aborts the
/// process-shared threads ungracefully; call `shutdown` for a clean drain.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the service: acceptor thread, `workers` synthesis
    /// workers, and the supervisor that restarts crashed workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind error (address in use, permission).
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shards = config.session_shards.max(1);
        // With a journal directory, labelings also persist to disk (CRC32
        // enveloped), so cached artifacts survive the same crashes the
        // journal recovers jobs from. Shards share one directory safely:
        // entries are content-keyed and written atomically.
        let disk_cache = config
            .journal
            .as_ref()
            .map(|journal| journal.dir.join("cache"));
        let sessions = (0..shards)
            .map(|_| {
                Arc::new(Session::new(SessionConfig {
                    cache_capacity: config.cache_capacity,
                    disk_cache: disk_cache.clone(),
                    ..SessionConfig::default()
                }))
            })
            .collect();
        let slots = (0..config.workers.max(1))
            .map(|_| WorkerSlot::default())
            .collect();

        // Journal replay happens before any thread exists: the table and
        // queue are rebuilt single-threaded, then serving starts.
        let queue = JobQueue::new(config.queue_capacity);
        let jobs = JobTable::new(config.retain);
        let mut next_id = 1u64;
        let mut journal = None;
        let mut recovery = None;
        if let Some(journal_config) = &config.journal {
            let (j, replay) = Journal::open(journal_config.clone())?;
            next_id = replay.next_id.max(1);
            let mut summary = Recovery {
                journal: replay.stats,
                ..Recovery::default()
            };
            for job in replay.jobs {
                restore_job(&jobs, &queue, &j, job, &mut summary);
            }
            journal = Some(j);
            recovery = Some(summary);
        }

        let inner = Arc::new(ServerInner {
            queue,
            jobs,
            sessions,
            metrics: Mutex::new(Metrics::default()),
            model: Mutex::new(LatencyModel::default()),
            breaker: Mutex::new(Breaker::new(config.breaker.clone())),
            slots,
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(next_id),
            journal,
            recovery,
            edit_sessions: Mutex::new(EditRegistry::new(16)),
            disk_cache,
            config,
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-acceptor".into())
                .spawn(move || accept_loop(&inner, &listener))
                .expect("spawn acceptor")
        };
        let supervisor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-supervisor".into())
                .spawn(move || supervise(&inner))
                .expect("spawn supervisor")
        };

        Ok(Server {
            inner,
            addr,
            acceptor: Some(acceptor),
            supervisor: Some(supervisor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup recovery restored (`None` without a journal).
    pub fn recovery(&self) -> Option<Recovery> {
        self.inner.recovery
    }

    /// Requests a graceful shutdown: stop accepting, shed unstarted jobs,
    /// let running jobs finish. Returns immediately; [`Server::join`]
    /// waits for the drain.
    pub fn request_shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let shed = self.inner.queue.close();
        for q in &shed {
            finish_job(
                &self.inner,
                q.id,
                JobState::Shed,
                error_json(
                    "shed_shutdown",
                    "server shutting down before the job started",
                    None,
                ),
            );
        }
        let mut metrics = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.shed_shutdown += shed.len() as u64;
    }

    /// Waits for the acceptor, workers, and supervisor to exit. Call
    /// after [`Server::request_shutdown`] (or let a signal handler set it).
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }

    /// Convenience: request shutdown and wait for the drain.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.join();
    }
}

/// Rebuilds one replayed job. Terminal jobs come back spec-less with
/// their outcomes; interrupted jobs re-parse their original submit body
/// and re-enter the queue with a fresh full deadline (at-least-once:
/// a job that was `running` when the server died runs again).
fn restore_job(
    jobs: &JobTable,
    queue: &JobQueue,
    journal: &Journal,
    job: crate::journal::JobRecord,
    summary: &mut Recovery,
) {
    let id = job.id;
    let rung = ServeRung::parse(&job.rung).unwrap_or(ServeRung::ExactMip);
    if job.is_terminal() {
        let budget = Budget::unlimited();
        let cancel = budget.cancel_handle();
        jobs.insert(JobEntry {
            id,
            job_key: job.key,
            label: job.label,
            spec: None,
            rung,
            admission_degraded: job.degraded,
            budget,
            cancel,
            cancel_requested: false,
            state: JobState::parse(&job.state).unwrap_or(JobState::Failed),
            submitted: Instant::now(),
            outcome: Some(job.outcome.unwrap_or(Json::Null)),
        });
        summary.restored_terminal += 1;
        return;
    }
    let spec = match parse_submit(&job.body) {
        Ok(spec) => spec,
        Err(msg) => {
            // The body journaled at admission no longer parses — only
            // possible through corruption or a wire-format change. Fail
            // it typed rather than dropping the id on the floor.
            let budget = Budget::unlimited();
            let cancel = budget.cancel_handle();
            jobs.insert(JobEntry {
                id,
                job_key: job.key,
                label: job.label,
                spec: None,
                rung,
                admission_degraded: job.degraded,
                budget,
                cancel,
                cancel_requested: false,
                state: JobState::Queued,
                submitted: Instant::now(),
                outcome: None,
            });
            let outcome = error_json(
                "replay_failed",
                &format!("journaled submit body no longer parses: {msg}"),
                None,
            );
            jobs.finish(id, JobState::Failed, outcome.clone());
            journal.append(&Record::Terminal {
                id,
                state: JobState::Failed.name().into(),
                outcome,
            });
            summary.failed_replay += 1;
            return;
        }
    };
    let budget = Budget::unlimited().with_deadline(spec.deadline);
    let cancel = budget.cancel_handle();
    let priority = job.priority;
    jobs.insert(JobEntry {
        id,
        job_key: job.key,
        label: job.label,
        spec: Some(spec),
        rung,
        admission_degraded: job.degraded,
        budget,
        cancel,
        cancel_requested: false,
        state: JobState::Queued,
        submitted: Instant::now(),
        outcome: None,
    });
    if queue
        .push(QueuedJob {
            priority,
            seq: id,
            id,
        })
        .is_err()
    {
        let outcome = error_json("queue_full", "queue filled during crash recovery", None);
        jobs.finish(id, JobState::Shed, outcome.clone());
        journal.append(&Record::Terminal {
            id,
            state: JobState::Shed.name().into(),
            outcome,
        });
        summary.shed_on_recovery += 1;
    } else {
        summary.requeued += 1;
    }
}

/// Accept loop: nonblocking accepts with a short sleep so the shutdown
/// flag is honored within ~10ms even when no connections arrive.
fn accept_loop(inner: &Arc<ServerInner>, listener: &TcpListener) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = Arc::clone(inner);
                // One short-lived thread per connection: requests are tiny
                // and `read_request` enforces size bounds, so the only
                // way to hold the thread is a slow client — bounded by the
                // read timeout below.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_connection(&inner, stream));
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(inner: &Arc<ServerInner>, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(e) => {
            let body = error_json(e.tag, "request rejected", None).to_compact();
            write_response(&mut stream, e.status, &body);
            return;
        }
    };
    let (status, body) = route(inner, &request);
    write_response(&mut stream, status, &body.to_compact());
}

fn route(inner: &Arc<ServerInner>, request: &Request) -> (u16, Json) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/submit") => submit(inner, &request.body),
        ("POST", "/patch") => patch(inner, &request.body),
        ("GET", "/status") => with_id(request, |id| status(inner, id)),
        ("GET", "/result") => with_id(request, |id| result(inner, id)),
        ("POST", "/cancel") => {
            let id = Json::parse(&request.body)
                .ok()
                .and_then(|j| j.get("id").and_then(Json::as_u64))
                .or_else(|| request.query.get("id").and_then(|s| s.parse().ok()));
            match id {
                Some(id) => cancel(inner, id),
                None => (
                    400,
                    error_json(
                        "bad_request",
                        "missing job id (body `{\"id\": n}` or ?id=n)",
                        None,
                    ),
                ),
            }
        }
        ("GET", "/metrics") => (200, metrics_json(inner)),
        ("GET", "/healthz") => (200, Json::Obj(vec![("ok".into(), Json::Bool(true))])),
        (_, "/submit" | "/patch" | "/status" | "/result" | "/cancel" | "/metrics" | "/healthz") => {
            (
                405,
                error_json("method_not_allowed", "wrong method for this endpoint", None),
            )
        }
        _ => (404, error_json("not_found", "unknown endpoint", None)),
    }
}

fn with_id(request: &Request, f: impl FnOnce(u64) -> (u16, Json)) -> (u16, Json) {
    match request.query.get("id").and_then(|s| s.parse().ok()) {
        Some(id) => f(id),
        None => (400, error_json("bad_request", "missing ?id=<job id>", None)),
    }
}

/// The expected queueing delay: mean observed job latency × depth,
/// divided across workers. Zero until the first job completes.
fn queue_wait_estimate(inner: &ServerInner) -> Duration {
    let metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
    let mean_us = metrics.histogram("job").map_or(0, |h| h.mean_us());
    drop(metrics);
    let depth = inner.queue.depth() as u64;
    let workers = inner.config.workers.max(1) as u64;
    Duration::from_micros(mean_us.saturating_mul(depth) / workers)
}

/// Shutdown + circuit-breaker gate shared by `/submit` and `/patch`.
/// Breaker first: reject-fast must not pay for JSON/netlist parsing.
fn pre_admit(inner: &Arc<ServerInner>) -> Result<Instant, (u16, Json)> {
    if inner.shutdown.load(Ordering::SeqCst) {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.shed_shutdown += 1;
        return Err((503, error_json("shutting_down", "server is draining", None)));
    }
    let now = Instant::now();
    let admitted = inner
        .breaker
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .admit(now);
    if let Err(rej) = admitted {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.shed_breaker += 1;
        return Err((
            503,
            error_json(
                "breaker_open",
                "the service is shedding load after repeated failures or overload",
                Some(rej.retry_after),
            ),
        ));
    }
    Ok(now)
}

fn submit(inner: &Arc<ServerInner>, body: &str) -> (u16, Json) {
    {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.submitted += 1;
    }
    let now = match pre_admit(inner) {
        Ok(now) => now,
        Err(resp) => return resp,
    };
    let spec = match parse_submit(body) {
        Ok(s) => s,
        Err(msg) => return (400, error_json("bad_request", &msg, None)),
    };
    admit_and_enqueue(inner, spec, now, body.to_string(), Vec::new())
}

/// `POST /patch`: an edit stream against the netlist of an earlier job,
/// named by its `job_key` (the lineage). The edits are validated and
/// materialized here, so the enqueued job carries an authoritative
/// netlist; the worker then tries the incremental ladder and falls back
/// to cold synthesis of that netlist on any desync.
fn patch(inner: &Arc<ServerInner>, body: &str) -> (u16, Json) {
    {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.patches += 1;
    }
    let now = match pre_admit(inner) {
        Ok(now) => now,
        Err(resp) => return resp,
    };
    let req = match parse_patch(body) {
        Ok(r) => r,
        Err(msg) => return (400, error_json("bad_request", &msg, None)),
    };
    let base = match inner.jobs.lookup_key(&req.base_key) {
        None => {
            return (
                404,
                error_json(
                    "unknown_lineage",
                    &format!(
                        "no job with key `{}` (evicted, or never submitted)",
                        req.base_key
                    ),
                    None,
                ),
            );
        }
        Some((id, None)) => {
            return (
                409,
                error_json(
                    "lineage_lost",
                    &format!(
                        "job {id} (key `{}`) was restored from the journal without its \
                         circuit; resubmit the base netlist before patching it",
                        req.base_key
                    ),
                    None,
                ),
            );
        }
        Some((_, Some(network))) => network,
    };

    // Validate the whole stream against the base before admitting
    // anything: a refused edit is the client's bug, reported typed.
    let mut netlist = EditableNetlist::from_network(&base);
    for (i, edit) in req.edits.iter().enumerate() {
        if let Err(e) = netlist.apply(edit) {
            return (
                400,
                error_json(
                    "bad_edit",
                    &format!("edit {i} (`{edit}`) rejected: {e}"),
                    None,
                ),
            );
        }
    }
    let edited = match netlist.materialize() {
        Ok(n) => n,
        Err(e) => return (400, error_json("bad_edit", &e.to_string(), None)),
    };
    let label = req
        .label
        .clone()
        .unwrap_or_else(|| format!("{}+{}", req.base_key, req.edits.len()));

    // The journal gets a plain submit body carrying the materialized
    // BLIF: crash replay re-runs the patch as cold synthesis of the same
    // netlist under the same key — correct, just not incremental.
    let journal_body = Json::Obj(vec![
        ("circuit".into(), Json::str(blif::write(&edited))),
        ("format".into(), Json::str("blif")),
        ("gamma".into(), Json::Num(req.gamma)),
        ("strategy".into(), Json::str(req.rung.name())),
        (
            "deadline_ms".into(),
            Json::Num(req.deadline.as_millis() as f64),
        ),
        ("priority".into(), Json::Num(f64::from(req.priority))),
        ("job_key".into(), Json::str(req.job_key.clone())),
        ("label".into(), Json::str(label.clone())),
    ])
    .to_compact();

    let lineage = req.base_key.clone();
    let spec = SubmitSpec {
        network: Arc::new(edited),
        label,
        gamma: req.gamma,
        rung: req.rung,
        backend: Backend::default(),
        deadline: req.deadline,
        priority: req.priority,
        chaos: None,
        job_key: Some(req.job_key),
        patch: Some(PatchDirective {
            lineage: req.base_key,
            base,
            edits: req.edits,
        }),
    };
    admit_and_enqueue(
        inner,
        spec,
        now,
        journal_body,
        vec![("patched_from".into(), Json::str(lineage))],
    )
}

/// The shared back half of admission: queue-depth shed, deadline
/// feasibility, id allocation, job-key dedup, journal append, and the
/// queue push. `journal_body` is what replays after a crash — always a
/// plain `/submit` body, even for patches.
fn admit_and_enqueue(
    inner: &Arc<ServerInner>,
    spec: SubmitSpec,
    now: Instant,
    journal_body: String,
    extra_fields: Vec<(String, Json)>,
) -> (u16, Json) {
    // Queue-depth shed: a full queue trips the breaker (overload evidence)
    // and rejects with the expected drain time.
    let wait = queue_wait_estimate(inner);
    if inner.queue.depth() >= inner.queue.capacity() {
        let trips = {
            let mut breaker = inner.breaker.lock().unwrap_or_else(|e| e.into_inner());
            breaker.trip_for_overload(now);
            breaker.trips()
        };
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.shed_queue_full += 1;
        metrics.counters.breaker_trips = trips;
        return (
            429,
            error_json(
                "queue_full",
                "the job queue is at capacity",
                Some(wait.max(Duration::from_millis(10))),
            ),
        );
    }

    // Deadline feasibility: accept at the requested rung, degrade to a
    // cheaper one, or reject — never enqueue a job that cannot finish.
    let plan = {
        let model = inner.model.lock().unwrap_or_else(|e| e.into_inner());
        model.plan(spec.rung, spec.deadline, wait)
    };
    let admission = match plan {
        Ok(a) => a,
        Err(inf) => {
            let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
            metrics.counters.shed_deadline += 1;
            let msg = format!(
                "deadline {}ms is below the cheapest-rung estimate {}ms",
                spec.deadline.as_millis(),
                inf.estimate.as_millis().max(1)
            );
            return (
                422,
                error_json("deadline_infeasible", &msg, Some(inf.retry_after)),
            );
        }
    };

    let id = inner.next_id.fetch_add(1, Ordering::SeqCst);
    let budget = Budget::unlimited().with_deadline(spec.deadline);
    let cancel = budget.cancel_handle();
    let priority = spec.priority;
    let requested = spec.rung;
    let job_key = spec.job_key.clone();
    let label = spec.label.clone();
    match inner.jobs.insert(JobEntry {
        id,
        job_key: job_key.clone(),
        label: label.clone(),
        spec: Some(spec),
        rung: admission.rung,
        admission_degraded: admission.degraded,
        budget,
        cancel,
        cancel_requested: false,
        state: JobState::Queued,
        submitted: now,
        outcome: None,
    }) {
        Insert::Inserted => {}
        // Idempotent resubmission: the key already names a job (possibly
        // restored from the journal after a crash) — hand that one back
        // instead of running the work twice.
        Insert::Duplicate(existing) => {
            let state = inner
                .jobs
                .status(existing)
                .map_or_else(|| "unknown".into(), |(s, _, _)| s.name().to_string());
            return (
                200,
                Json::Obj(vec![
                    ("id".into(), Json::Num(existing as f64)),
                    ("state".into(), Json::str(state)),
                    ("duplicate".into(), Json::Bool(true)),
                ]),
            );
        }
    }
    // Journal the admission *before* the queue push: once a worker can
    // see the job, the journal already covers it (records replay
    // idempotently, so the harmless reverse orderings don't matter, but
    // a journaled-then-shed job must never become a popped-then-lost one).
    if let Some(journal) = &inner.journal {
        journal.append(&Record::Admitted {
            id,
            key: job_key,
            body: journal_body,
            label,
            rung: admission.rung.name().into(),
            degraded: admission.degraded,
            priority,
        });
    }
    if inner
        .queue
        .push(QueuedJob {
            priority,
            seq: id,
            id,
        })
        .is_err()
    {
        // Lost the race between the depth check and the push.
        finish_job(
            inner,
            id,
            JobState::Shed,
            error_json("queue_full", "queue filled during admission", None),
        );
        inner
            .breaker
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .trip_for_overload(now);
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.shed_queue_full += 1;
        return (
            429,
            error_json(
                "queue_full",
                "the job queue is at capacity",
                Some(wait.max(Duration::from_millis(10))),
            ),
        );
    }

    {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.accepted += 1;
        if admission.degraded {
            metrics.counters.degraded_admission += 1;
        }
    }
    let mut fields = vec![
        ("id".into(), Json::Num(id as f64)),
        ("rung".into(), Json::str(admission.rung.name())),
        ("requested_rung".into(), Json::str(requested.name())),
        ("degraded".into(), Json::Bool(admission.degraded)),
        (
            "estimated_ms".into(),
            Json::Num(admission.estimate.as_millis() as f64),
        ),
    ];
    fields.extend(extra_fields);
    (200, Json::Obj(fields))
}

fn status(inner: &Arc<ServerInner>, id: u64) -> (u16, Json) {
    match inner.jobs.status(id) {
        None => (
            404,
            error_json("not_found", "unknown or evicted job id", None),
        ),
        Some((state, submitted, label)) => (
            200,
            Json::Obj(vec![
                ("id".into(), Json::Num(id as f64)),
                ("state".into(), Json::str(state.name())),
                ("label".into(), Json::str(label)),
                (
                    "age_ms".into(),
                    Json::Num(submitted.elapsed().as_millis() as f64),
                ),
            ]),
        ),
    }
}

fn result(inner: &Arc<ServerInner>, id: u64) -> (u16, Json) {
    match inner.jobs.outcome(id) {
        Some((state, outcome)) => (
            200,
            Json::Obj(vec![
                ("id".into(), Json::Num(id as f64)),
                ("state".into(), Json::str(state.name())),
                ("outcome".into(), outcome),
            ]),
        ),
        None => match inner.jobs.status(id) {
            Some(_) => (
                409,
                error_json("not_finished", "job has not reached a terminal state", None),
            ),
            None => (
                404,
                error_json("not_found", "unknown or evicted job id", None),
            ),
        },
    }
}

fn cancel(inner: &Arc<ServerInner>, id: u64) -> (u16, Json) {
    match inner.jobs.cancel(id) {
        None => (
            404,
            error_json("not_found", "unknown or evicted job id", None),
        ),
        Some((state, newly_terminal)) => {
            // Only the call that actually performed the queued-cancel
            // counts and journals it; repeats and running-cancels don't
            // (the latter reach their terminal state through the worker).
            if newly_terminal {
                {
                    let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    metrics.counters.cancelled += 1;
                }
                if let Some(journal) = &inner.journal {
                    let outcome = inner
                        .jobs
                        .outcome(id)
                        .map_or(Json::Null, |(_, outcome)| outcome);
                    journal.append(&Record::Terminal {
                        id,
                        state: JobState::Cancelled.name().into(),
                        outcome,
                    });
                }
            }
            (
                200,
                Json::Obj(vec![
                    ("id".into(), Json::Num(id as f64)),
                    ("state".into(), Json::str(state.name())),
                ]),
            )
        }
    }
}

fn metrics_json(inner: &Arc<ServerInner>) -> Json {
    let breaker = inner.breaker.lock().unwrap_or_else(|e| e.into_inner());
    let breaker_state = match breaker.state() {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    };
    let trips = breaker.trips();
    drop(breaker);

    // Aggregate the session shards: cache effectiveness + per-stage work.
    let mut hits = 0usize;
    let mut misses = 0usize;
    let mut entries = 0usize;
    let mut evicted = 0usize;
    let mut disk_hits = 0usize;
    let mut disk_corrupt = 0usize;
    let mut stages: Vec<(String, Json)> = Vec::new();
    let mut per_stage: Vec<(StageKind, usize, usize, usize, Duration)> = StageKind::all()
        .into_iter()
        .map(|k| (k, 0, 0, 0, Duration::ZERO))
        .collect();
    // Labeling-solver figures ride along: branch & bound nodes, proven
    // gaps, and warm-start hit/miss across every VhLabel record.
    let mut solves = 0usize;
    let mut bnb_nodes = 0u64;
    let mut warm_hits = 0usize;
    let mut warm_misses = 0usize;
    let mut worst_gap = 0.0f64;
    for session in &inner.sessions {
        let stats = session.cache_stats();
        hits += stats.hits;
        misses += stats.misses;
        entries += stats.entries;
        evicted += stats.evicted;
        disk_hits += stats.disk_hits;
        disk_corrupt += stats.disk_corrupt;
        let trace = session.trace();
        for (kind, runs, builds, cache_hits, wall) in &mut per_stage {
            *runs += trace.runs(*kind);
            *builds += trace.builds(*kind);
            *cache_hits += trace.hits(*kind);
            *wall += trace.total_wall(*kind);
        }
        for solve in trace.records.iter().filter_map(|r| r.solve) {
            solves += 1;
            bnb_nodes += solve.nodes;
            match solve.warm_start {
                Some(true) => warm_hits += 1,
                Some(false) => warm_misses += 1,
                None => {}
            }
            worst_gap = worst_gap.max(solve.gap);
        }
    }
    for (kind, runs, builds, cache_hits, wall) in per_stage {
        if runs == 0 {
            continue;
        }
        stages.push((
            kind.name().to_string(),
            Json::Obj(vec![
                ("runs".into(), Json::int(runs)),
                ("builds".into(), Json::int(builds)),
                ("cache_hits".into(), Json::int(cache_hits)),
                ("wall_ms".into(), Json::Num(wall.as_millis() as f64)),
            ]),
        ));
    }
    let cache_total = hits + misses;
    let hit_rate = if cache_total == 0 {
        0.0
    } else {
        hits as f64 / cache_total as f64
    };

    let mut extra = vec![
        ("queue_depth".into(), Json::int(inner.queue.depth())),
        ("queue_capacity".into(), Json::int(inner.queue.capacity())),
        ("live_jobs".into(), Json::int(inner.jobs.live_count())),
        ("workers".into(), Json::int(inner.config.workers.max(1))),
        ("breaker_state".into(), Json::str(breaker_state)),
        ("breaker_trips".into(), Json::Num(trips as f64)),
        (
            "cache".into(),
            Json::Obj(vec![
                ("hits".into(), Json::int(hits)),
                ("misses".into(), Json::int(misses)),
                ("entries".into(), Json::int(entries)),
                ("evicted".into(), Json::int(evicted)),
                ("hit_rate".into(), Json::Num(hit_rate)),
                ("disk_hits".into(), Json::int(disk_hits)),
                ("disk_corrupt".into(), Json::int(disk_corrupt)),
            ]),
        ),
        ("stages".into(), Json::Obj(stages)),
        (
            "solver".into(),
            Json::Obj(vec![
                ("label_solves".into(), Json::int(solves)),
                ("bnb_nodes".into(), Json::Num(bnb_nodes as f64)),
                ("warm_hits".into(), Json::int(warm_hits)),
                ("warm_misses".into(), Json::int(warm_misses)),
                ("worst_gap".into(), Json::Num(worst_gap)),
            ]),
        ),
    ];
    if let Some(journal) = &inner.journal {
        let s = journal.stats();
        let recovery = inner.recovery.unwrap_or_default();
        extra.push((
            "journal".into(),
            Json::Obj(vec![
                (
                    "records_appended".into(),
                    Json::Num(s.records_appended as f64),
                ),
                (
                    "records_replayed".into(),
                    Json::Num(s.records_replayed as f64),
                ),
                (
                    "torn_tail_truncations".into(),
                    Json::Num(s.torn_tail_truncations as f64),
                ),
                (
                    "checksum_failures".into(),
                    Json::Num(s.checksum_failures as f64),
                ),
                ("rotations".into(), Json::Num(s.rotations as f64)),
                ("compactions".into(), Json::Num(s.compactions as f64)),
                ("append_errors".into(), Json::Num(s.append_errors as f64)),
                (
                    "restored_terminal".into(),
                    Json::int(recovery.restored_terminal),
                ),
                ("requeued".into(), Json::int(recovery.requeued)),
                ("failed_replay".into(), Json::int(recovery.failed_replay)),
                (
                    "shed_on_recovery".into(),
                    Json::int(recovery.shed_on_recovery),
                ),
            ]),
        ));
    }
    let metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
    metrics.to_json(extra)
}

/// The worker loop: pop → claim → synthesize under the job budget →
/// record. A panic anywhere in here kills only this thread; the
/// supervisor attributes the in-flight job and respawns.
fn worker_loop(inner: &Arc<ServerInner>, slot: usize) {
    while let Some(queued) = inner.queue.pop_blocking() {
        let Some((spec, rung, admission_degraded, budget)) = inner.jobs.claim_for_run(queued.id)
        else {
            continue; // cancelled while queued, or evicted
        };
        *inner.slots[slot]
            .current
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(queued.id);
        if let Some(journal) = &inner.journal {
            journal.append(&Record::Started { id: queued.id });
        }

        // Chaos hooks (opt-in, test/CI only): `panic-worker` kills this
        // worker mid-job to exercise the supervisor's crash containment
        // (the slot still names the job, so it is failed as
        // `worker_crashed`); `stall:<ms>` holds the worker to create
        // deterministic backpressure for overload tests.
        if inner.config.enable_chaos {
            if spec.chaos.as_deref() == Some("panic-worker") {
                panic!("chaos: panic-worker requested by job {}", queued.id);
            }
            if let Some(ms) = spec
                .chaos
                .as_deref()
                .and_then(|c| c.strip_prefix("stall:"))
                .and_then(|v| v.parse::<u64>().ok())
            {
                std::thread::sleep(Duration::from_millis(ms.min(10_000)));
            }
        }

        let start = Instant::now();
        let remaining = budget.remaining_or(Duration::from_secs(3600));
        let config = Config {
            strategy: rung.strategy(spec.gamma, remaining),
            align: true,
            var_order: None,
            label_threads: 1,
        };
        // Non-COMPACT backends dispatch through the unified
        // `MappingBackend` trait: no incremental patch ladder, no
        // COMPACT degradation machinery. The admission rung still
        // shaped `config` above, so the backend's synthesis context
        // carries the admission-assigned strategy and time slice.
        if spec.patch.is_none() && !matches!(spec.backend, Backend::Compact(_)) {
            let shard = (bdd_key(&spec.network, None).0 as usize) % inner.sessions.len();
            let ctx = SynthesisCtx::new(config)
                .with_session(&inner.sessions[shard])
                .with_budget(budget.clone());
            let outcome = spec.backend.synthesize(&spec.network, &ctx);
            let wall = start.elapsed();
            *inner.slots[slot]
                .current
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = None;
            let cancelled = inner.jobs.cancel_requested(queued.id);
            match outcome {
                Ok(design) => {
                    let m = &design.metrics;
                    let body = Json::Obj(vec![
                        ("label".into(), Json::str(spec.label.clone())),
                        ("backend".into(), Json::str(design.backend)),
                        ("rows".into(), Json::int(m.rows)),
                        ("cols".into(), Json::int(m.cols)),
                        ("semiperimeter".into(), Json::int(m.semiperimeter)),
                        ("max_dimension".into(), Json::int(m.max_dimension)),
                        ("tiles".into(), Json::int(m.tiles)),
                        ("transfer_ops".into(), Json::int(m.transfer_ops)),
                        ("admission_rung".into(), Json::str(rung.name())),
                        ("degraded".into(), Json::Bool(admission_degraded)),
                        ("cancelled".into(), Json::Bool(cancelled)),
                        ("wall_ms".into(), Json::Num(wall.as_millis() as f64)),
                    ]);
                    let state = if cancelled {
                        JobState::Cancelled
                    } else {
                        JobState::Done
                    };
                    finish_job(inner, queued.id, state, body);
                    let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    metrics.observe("job", wall);
                    metrics.observe(backend_latency_name(&spec.backend), wall);
                    if cancelled {
                        metrics.counters.cancelled += 1;
                    } else {
                        metrics.counters.completed_ok += 1;
                    }
                    drop(metrics);
                    inner
                        .breaker
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(true, Instant::now());
                }
                Err(e) => {
                    let kind = match &e {
                        flowc_baselines::BackendError::Infeasible(_) => "infeasible",
                        _ => "synthesis_failed",
                    };
                    finish_job(
                        inner,
                        queued.id,
                        JobState::Failed,
                        error_json(kind, &e.to_string(), None),
                    );
                    let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    metrics.counters.failed += 1;
                    drop(metrics);
                    // An infeasible tile constraint is the client's ask,
                    // not service ill-health: don't feed the breaker a
                    // failure for it.
                    inner
                        .breaker
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(
                            matches!(e, flowc_baselines::BackendError::Infeasible(_)),
                            Instant::now(),
                        );
                }
            }
            sync_breaker_trips(inner);
            continue;
        }

        let (outcome, incremental) = match &spec.patch {
            Some(patch) => run_patch_job(inner, patch, &spec, &config, &budget),
            None => {
                let shard = (bdd_key(&spec.network, None).0 as usize) % inner.sessions.len();
                let session = &inner.sessions[shard];
                (
                    synthesize_in_budgeted(session, &spec.network, &config, &budget),
                    None,
                )
            }
        };
        let wall = start.elapsed();
        *inner.slots[slot]
            .current
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = None;

        let cancelled = inner.jobs.cancel_requested(queued.id);
        match outcome {
            Ok(result) => {
                let degradation = result.degradation.as_ref();
                let pipeline_degraded = degradation.is_some_and(|d| d.degraded);
                let shipped_rung = degradation.map_or("unknown", |d| d.rung.name()).to_string();
                let exhausted = degradation
                    .and_then(|d| d.exhausted.as_ref())
                    .map(|e| e.to_string());
                let degraded = pipeline_degraded || admission_degraded;
                let mut fields = vec![
                    ("label".into(), Json::str(spec.label.clone())),
                    ("rows".into(), Json::int(result.stats.rows)),
                    ("cols".into(), Json::int(result.stats.cols)),
                    (
                        "semiperimeter".into(),
                        Json::int(result.stats.semiperimeter),
                    ),
                    (
                        "max_dimension".into(),
                        Json::int(result.stats.max_dimension),
                    ),
                    ("admission_rung".into(), Json::str(rung.name())),
                    ("shipped_rung".into(), Json::str(shipped_rung)),
                    ("degraded".into(), Json::Bool(degraded)),
                    ("cancelled".into(), Json::Bool(cancelled)),
                    ("relative_gap".into(), Json::Num(result.relative_gap)),
                    ("exhausted".into(), exhausted.map_or(Json::Null, Json::str)),
                    ("wall_ms".into(), Json::Num(wall.as_millis() as f64)),
                ];
                if let Some(summary) = incremental {
                    fields.push(("incremental".into(), summary));
                }
                let body = Json::Obj(fields);
                let state = if cancelled {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                finish_job(inner, queued.id, state, body);
                {
                    let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                    metrics.observe("job", wall);
                    metrics.observe(rung_latency_name(rung), wall);
                    metrics.observe(backend_latency_name(&spec.backend), wall);
                    if let Some(d) = degradation {
                        metrics.observe("stage.bdd-build", d.bdd_wall);
                        let label_wall: Duration = d.attempts.iter().map(|a| a.wall).sum();
                        metrics.observe("stage.vh-label", label_wall);
                    }
                    if cancelled {
                        metrics.counters.cancelled += 1;
                    } else if degraded {
                        metrics.counters.completed_degraded += 1;
                    } else {
                        metrics.counters.completed_ok += 1;
                    }
                }
                // Cancelled runs finish artificially fast; folding them
                // into the latency model would bias admission optimistic.
                if !cancelled {
                    inner
                        .model
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .record(rung, wall);
                }
                inner
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(true, Instant::now());
            }
            // A cancel that fired before any design could ship (e.g. mid
            // BDD build): the client asked for this, so it is a cancelled
            // job, not a service failure.
            Err(flowc_compact::CompactError::Cancelled) => {
                finish_job(
                    inner,
                    queued.id,
                    JobState::Cancelled,
                    Json::Obj(vec![
                        ("label".into(), Json::str(spec.label.clone())),
                        ("cancelled_while".into(), Json::str("running")),
                        ("wall_ms".into(), Json::Num(wall.as_millis() as f64)),
                    ]),
                );
                let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                metrics.counters.cancelled += 1;
                drop(metrics);
                inner
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(true, Instant::now());
            }
            Err(e) => {
                finish_job(
                    inner,
                    queued.id,
                    JobState::Failed,
                    error_json("synthesis_failed", &e.to_string(), None),
                );
                let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                metrics.counters.failed += 1;
                drop(metrics);
                inner
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(false, Instant::now());
            }
        }
        sync_breaker_trips(inner);
    }
}

/// One patch job through the incremental ladder: take (or build) the
/// lineage's edit session, replay the edit stream through it, and
/// re-register the advanced session under the patch's own key. Any
/// failure — lost lineage, refused edit, synthesis error — falls back to
/// cold synthesis of the admission-materialized netlist, which is always
/// authoritative. Returns the outcome plus the `incremental` body field.
fn run_patch_job(
    inner: &ServerInner,
    patch: &PatchDirective,
    spec: &SubmitSpec,
    config: &Config,
    budget: &Budget,
) -> (Result<CompactResult, CompactError>, Option<Json>) {
    let base_cone = EditableNetlist::from_network(&patch.base).combined_cone_key();
    let gamma_bits = spec.gamma.to_bits();
    let reused = {
        let mut registry = inner
            .edit_sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        registry.take(&patch.lineage, base_cone, gamma_bits, spec.rung)
    };
    let resumed = reused.is_some();
    let session: Result<EditSession, String> = match reused {
        Some(s) => Ok(s),
        None => EditSession::new(
            &patch.base,
            EditSessionConfig {
                synthesis: config.clone(),
                session: SessionConfig {
                    cache_capacity: inner.config.cache_capacity,
                    disk_cache: inner.disk_cache.clone(),
                    ..SessionConfig::default()
                },
                ..EditSessionConfig::default()
            },
        )
        .map_err(|e| format!("base session: {e}")),
    };

    let mut failure: Option<String> = None;
    let mut resolutions: Vec<Json> = Vec::new();
    let mut finished: Option<(CompactResult, [usize; 4])> = None;
    match session {
        Err(e) => failure = Some(e),
        Ok(mut session) => {
            let before = session.stats();
            for edit in &patch.edits {
                match session.apply_budgeted(edit, budget) {
                    Ok(out) => resolutions.push(Json::str(out.resolution.name())),
                    Err(e) => {
                        failure = Some(format!("edit `{edit}`: {e}"));
                        break;
                    }
                }
            }
            if failure.is_none() {
                let after = session.stats();
                let delta = [
                    after.hits - before.hits,
                    after.repairs - before.repairs,
                    after.warm_starts - before.warm_starts,
                    after.cold_solves - before.cold_solves,
                ];
                let result = session.result().clone();
                if let Some(key) = &spec.job_key {
                    let entry = LineageEntry {
                        cone_key: session.netlist().combined_cone_key(),
                        gamma_bits,
                        rung: spec.rung,
                        session,
                    };
                    inner
                        .edit_sessions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(key.clone(), entry);
                }
                finished = Some((result, delta));
            }
        }
    }

    if let Some((result, [hits, repairs, warm_starts, cold_solves])) = finished {
        {
            let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
            metrics.counters.incremental_hits += hits as u64;
            metrics.counters.incremental_repairs += repairs as u64;
            metrics.counters.incremental_warm_starts += warm_starts as u64;
            metrics.counters.incremental_cold += cold_solves as u64;
        }
        let summary = Json::Obj(vec![
            ("lineage".into(), Json::str(patch.lineage.clone())),
            ("resumed".into(), Json::Bool(resumed)),
            ("fallback".into(), Json::Bool(false)),
            ("edits".into(), Json::int(patch.edits.len())),
            ("hits".into(), Json::int(hits)),
            ("repairs".into(), Json::int(repairs)),
            ("warm_starts".into(), Json::int(warm_starts)),
            ("cold_solves".into(), Json::int(cold_solves)),
            ("resolutions".into(), Json::Arr(resolutions)),
        ]);
        return (Ok(result), Some(summary));
    }

    // Cold fallback, counted as such so `/metrics` shows how often the
    // incremental path actually carries patches.
    {
        let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        metrics.counters.incremental_cold += 1;
    }
    let shard = (bdd_key(&spec.network, None).0 as usize) % inner.sessions.len();
    let outcome = synthesize_in_budgeted(&inner.sessions[shard], &spec.network, config, budget);
    let summary = Json::Obj(vec![
        ("lineage".into(), Json::str(patch.lineage.clone())),
        ("resumed".into(), Json::Bool(resumed)),
        ("fallback".into(), Json::Bool(true)),
        ("reason".into(), failure.map_or(Json::Null, Json::str)),
    ]);
    (outcome, Some(summary))
}

fn rung_latency_name(rung: ServeRung) -> &'static str {
    match rung {
        ServeRung::ExactMip => "rung.exact-mip",
        ServeRung::AnytimeMip => "rung.anytime-mip",
        ServeRung::HeuristicOct => "rung.heuristic-oct",
        ServeRung::Staircase => "rung.staircase",
    }
}

/// Per-backend latency histogram name, so `/metrics` surfaces which
/// mapping backend served each job (all five [`Backend`] variants get a
/// stable `backend.*` series).
fn backend_latency_name(backend: &Backend) -> &'static str {
    match backend {
        Backend::Compact(_) => "backend.compact",
        Backend::Staircase(_) => "backend.staircase",
        Backend::RobddDiagonal(_) => "backend.robdd-diagonal",
        Backend::MagicNor(_) => "backend.magic-nor",
        Backend::Partitioned(_) => "backend.partitioned",
    }
}

fn sync_breaker_trips(inner: &ServerInner) {
    let trips = inner
        .breaker
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .trips();
    let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
    metrics.counters.breaker_trips = trips;
}

/// Supervisor: spawn the workers, watch for crashes, restart with
/// exponential backoff, and attribute the crashed worker's in-flight job.
fn supervise(inner: &Arc<ServerInner>) {
    let workers = inner.config.workers.max(1);
    let base_backoff = Duration::from_millis(50);
    let max_backoff = Duration::from_secs(5);
    let mut handles: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(workers);
    let mut backoff = vec![base_backoff; workers];
    let mut spawned_at = vec![Instant::now(); workers];
    let mut restart_due: Vec<Option<Instant>> = vec![None; workers];

    for slot in 0..workers {
        handles.push(Some(spawn_worker(inner, slot)));
    }

    loop {
        let shutting_down = inner.shutdown.load(Ordering::SeqCst);
        for slot in 0..workers {
            // A pending restart fires once its backoff deadline passes.
            if let Some(due) = restart_due[slot] {
                if !shutting_down && Instant::now() >= due {
                    restart_due[slot] = None;
                    spawned_at[slot] = Instant::now();
                    handles[slot] = Some(spawn_worker(inner, slot));
                }
                continue;
            }
            let finished = handles[slot].as_ref().is_some_and(JoinHandle::is_finished);
            if !finished {
                continue;
            }
            let handle = handles[slot].take().expect("checked above");
            let crashed = handle.join().is_err();
            if shutting_down && !crashed {
                continue; // clean exit through queue close
            }
            // Crash (or an impossible clean exit while serving): fail the
            // in-flight job, then schedule a backoff restart.
            let in_flight = inner.slots[slot]
                .current
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            if let Some(job_id) = in_flight {
                finish_job(
                    inner,
                    job_id,
                    JobState::Failed,
                    error_json(
                        "worker_crashed",
                        "the worker thread running this job panicked; the worker was restarted",
                        None,
                    ),
                );
                let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                metrics.counters.failed += 1;
                drop(metrics);
                inner
                    .breaker
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .record(false, Instant::now());
                sync_breaker_trips(inner);
            }
            if shutting_down {
                continue;
            }
            // A worker that survived a while has proven the previous
            // incident over; start the backoff ladder fresh.
            if spawned_at[slot].elapsed() > Duration::from_secs(10) {
                backoff[slot] = base_backoff;
            }
            {
                let mut metrics = inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
                metrics.counters.worker_restarts += 1;
            }
            restart_due[slot] = Some(Instant::now() + backoff[slot]);
            backoff[slot] = (backoff[slot] * 2).min(max_backoff);
        }

        if shutting_down {
            // Drain: join everything that is still running; pending
            // restarts are abandoned.
            for handle in handles.iter_mut() {
                if let Some(h) = handle.take() {
                    let _ = h.join();
                }
            }
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn spawn_worker(inner: &Arc<ServerInner>, slot: usize) -> JoinHandle<()> {
    let inner = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("serve-worker-{slot}"))
        .spawn(move || worker_loop(&inner, slot))
        .expect("spawn worker")
}

//! A bounded, priority-ordered job queue. Capacity is a hard bound —
//! a full queue rejects the push with a typed error (the server turns
//! that into `429 queue_full`), it never grows. Among queued jobs the
//! highest priority runs first; ties break FIFO by submission sequence.

use std::collections::BinaryHeap;
use std::sync::{Condvar, Mutex};

/// One queued job reference: ordering metadata plus the job id. The job's
/// payload lives in the job table; the queue only orders ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedJob {
    /// Client-chosen priority, 0–9; higher runs first.
    pub priority: u8,
    /// Monotonic submission sequence (tie-breaker: lower = older = first).
    pub seq: u64,
    /// The job id to look up in the table.
    pub id: u64,
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then older seq first.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Push rejection: the queue is at capacity.
#[derive(Debug, Clone, Copy)]
pub struct QueueFull {
    /// The capacity that was hit.
    pub capacity: usize,
}

#[derive(Debug)]
struct QueueInner {
    heap: BinaryHeap<QueuedJob>,
    capacity: usize,
    closed: bool,
}

/// The queue: a mutex-guarded binary heap plus a condvar for blocking
/// pops. Closing wakes every waiter; a closed queue pops `None` (workers
/// exit) and rejects pushes as if full.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl JobQueue {
    /// An empty queue bounded at `capacity` (min 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(QueueInner {
                heap: BinaryHeap::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues a job.
    ///
    /// # Errors
    ///
    /// [`QueueFull`] at capacity or after [`JobQueue::close`] — the queue
    /// never grows past its bound, and a draining server accepts nothing.
    pub fn push(&self, job: QueuedJob) -> Result<(), QueueFull> {
        let mut inner = self.lock();
        if inner.closed || inner.heap.len() >= inner.capacity {
            return Err(QueueFull {
                capacity: inner.capacity,
            });
        }
        inner.heap.push(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available or the queue is closed; `None`
    /// means closed (worker should exit).
    pub fn pop_blocking(&self) -> Option<QueuedJob> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return None;
            }
            if let Some(job) = inner.heap.pop() {
                return Some(job);
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.lock().heap.len()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Closes the queue: wakes all waiting workers and returns the jobs
    /// that will now never run (the server marks them shed).
    pub fn close(&self) -> Vec<QueuedJob> {
        let mut inner = self.lock();
        inner.closed = true;
        let drained = inner.heap.drain().collect();
        drop(inner);
        self.ready.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn job(priority: u8, seq: u64) -> QueuedJob {
        QueuedJob {
            priority,
            seq,
            id: seq,
        }
    }

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(8);
        q.push(job(1, 0)).unwrap();
        q.push(job(5, 1)).unwrap();
        q.push(job(5, 2)).unwrap();
        q.push(job(9, 3)).unwrap();
        let order: Vec<u64> = (0..4).map(|_| q.pop_blocking().unwrap().seq).collect();
        assert_eq!(order, vec![3, 1, 2, 0]);
    }

    #[test]
    fn capacity_is_a_hard_bound() {
        let q = JobQueue::new(2);
        q.push(job(0, 0)).unwrap();
        q.push(job(0, 1)).unwrap();
        let err = q.push(job(0, 2)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains() {
        let q = Arc::new(JobQueue::new(4));
        q.push(job(0, 0)).unwrap();
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // First pop gets the job; second blocks until close.
                let first = q.pop_blocking();
                let second = q.pop_blocking();
                (first, second)
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.push(job(0, 1)).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let shed = q.close();
        let (first, second) = waiter.join().unwrap();
        assert!(first.is_some());
        // The waiter either consumed seq 1 before close (second Some) or
        // close drained it (shed non-empty) — never both, never neither.
        assert_eq!(second.is_some() as usize + shed.len(), 1);
        assert!(q.push(job(0, 9)).is_err());
        assert!(q.pop_blocking().is_none());
    }
}

//! A circuit breaker for the synthesis service: when the recent failure
//! rate or the queue depth says the backend is unhealthy, new work is
//! rejected *fast* (with a retry hint) instead of piling onto a struggling
//! queue. After a cooldown the breaker half-opens and admits a single
//! probe; the probe's outcome decides between closing and re-opening with
//! a doubled cooldown.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Breaker tuning. The defaults are deliberately conservative: ten
/// samples minimum before a rate trip, and a short base cooldown so tests
/// (and recoveries) are fast.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Sliding window length (job outcomes).
    pub window: usize,
    /// Minimum outcomes in the window before the failure rate can trip.
    pub min_samples: usize,
    /// Failure rate in `[0, 1]` at which the breaker opens.
    pub failure_threshold: f64,
    /// First open-state cooldown; doubles on every consecutive re-open,
    /// capped at [`BreakerConfig::max_cooldown`].
    pub base_cooldown: Duration,
    /// Upper bound for the doubled cooldown.
    pub max_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 32,
            min_samples: 10,
            failure_threshold: 0.5,
            base_cooldown: Duration::from_millis(250),
            max_cooldown: Duration::from_secs(30),
        }
    }
}

/// The classic three states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all admissions pass.
    Closed,
    /// Tripped: admissions are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe job is in flight.
    HalfOpen,
}

/// Why an admission was refused, with the suggested retry delay.
#[derive(Debug, Clone, Copy)]
pub struct BreakerRejection {
    /// How long the client should wait before retrying.
    pub retry_after: Duration,
}

/// The breaker itself. Not internally synchronized — the server holds it
/// behind its own mutex.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    /// `true` = failure, most recent at the back.
    window: VecDeque<bool>,
    /// When the open state ends (meaningful in `Open`).
    open_until: Instant,
    /// The cooldown the *next* trip will use.
    cooldown: Duration,
    /// Total closed → open transitions.
    trips: u64,
}

impl Breaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        let cooldown = config.base_cooldown;
        Breaker {
            config,
            state: BreakerState::Closed,
            window: VecDeque::new(),
            open_until: Instant::now(),
            cooldown,
            trips: 0,
        }
    }

    /// Current state (transitions lazily on [`Breaker::admit`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Total number of trips so far.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Asks to admit one job at time `now`.
    ///
    /// # Errors
    ///
    /// [`BreakerRejection`] while open (with the remaining cooldown) or
    /// while a half-open probe is already in flight.
    pub fn admit(&mut self, now: Instant) -> Result<(), BreakerRejection> {
        match self.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                if now >= self.open_until {
                    // Cooldown served: admit this one job as the probe.
                    self.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    Err(BreakerRejection {
                        retry_after: self.open_until - now,
                    })
                }
            }
            BreakerState::HalfOpen => Err(BreakerRejection {
                retry_after: self.cooldown,
            }),
        }
    }

    /// Records one finished job. In half-open state the outcome belongs to
    /// the probe: success closes the breaker (and resets the cooldown),
    /// failure re-opens it with a doubled cooldown.
    pub fn record(&mut self, success: bool, now: Instant) {
        self.window.push_back(!success);
        while self.window.len() > self.config.window {
            self.window.pop_front();
        }
        match self.state {
            BreakerState::HalfOpen => {
                if success {
                    self.state = BreakerState::Closed;
                    self.cooldown = self.config.base_cooldown;
                    self.window.clear();
                } else {
                    self.cooldown = (self.cooldown * 2).min(self.config.max_cooldown);
                    self.trip(now);
                }
            }
            BreakerState::Closed => {
                let failures = self.window.iter().filter(|&&f| f).count();
                if self.window.len() >= self.config.min_samples
                    && failures as f64 >= self.config.failure_threshold * self.window.len() as f64
                {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Trips the breaker directly (queue-depth overload): the queue being
    /// at capacity is evidence enough without waiting for failures.
    pub fn trip_for_overload(&mut self, now: Instant) {
        if self.state != BreakerState::Open {
            self.trip(now);
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.open_until = now + self.cooldown;
        self.trips += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            base_cooldown: Duration::from_millis(100),
            max_cooldown: Duration::from_secs(1),
        }
    }

    #[test]
    fn trips_on_failure_rate_and_recovers_via_probe() {
        let mut b = Breaker::new(fast_config());
        let t0 = Instant::now();
        for _ in 0..4 {
            b.record(false, t0);
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        // Rejected during cooldown, with a retry hint.
        let rej = b.admit(t0 + Duration::from_millis(10)).unwrap_err();
        assert!(rej.retry_after > Duration::ZERO);
        // After the cooldown one probe is admitted; a second ask is not.
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.admit(t1).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit(t1).is_err());
        // Probe success closes the breaker and clears the window.
        b.record(true, t1);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit(t1).is_ok());
    }

    #[test]
    fn failed_probe_doubles_the_cooldown() {
        let mut b = Breaker::new(fast_config());
        let t0 = Instant::now();
        for _ in 0..4 {
            b.record(false, t0);
        }
        let t1 = t0 + Duration::from_millis(150);
        assert!(b.admit(t1).is_ok()); // probe
        b.record(false, t1); // probe fails → open again, cooldown doubled
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // 100ms base doubled to 200ms: still rejected at +150ms.
        assert!(b.admit(t1 + Duration::from_millis(150)).is_err());
        assert!(b.admit(t1 + Duration::from_millis(250)).is_ok());
    }

    #[test]
    fn concurrent_half_open_asks_admit_exactly_one_probe() {
        use std::sync::{Arc, Barrier, Mutex};

        let breaker = Arc::new(Mutex::new(Breaker::new(fast_config())));
        let t0 = Instant::now();
        {
            let mut b = breaker.lock().unwrap();
            for _ in 0..4 {
                b.record(false, t0);
            }
            assert_eq!(b.state(), BreakerState::Open);
        }

        // Sixteen threads race `admit` at the same post-cooldown instant —
        // the server's worst case, where a burst of submissions all find
        // the cooldown served. The mutex serializes them; the state machine
        // must hand the half-open probe slot to exactly one.
        let now = t0 + Duration::from_millis(150);
        let threads = 16;
        let barrier = Arc::new(Barrier::new(threads));
        let outcomes: Vec<Result<(), BreakerRejection>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let breaker = Arc::clone(&breaker);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        breaker.lock().unwrap().admit(now)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let admitted = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(admitted, 1, "exactly one racer wins the probe slot");
        for rejection in outcomes.iter().filter_map(|o| o.as_ref().err()) {
            assert!(rejection.retry_after > Duration::ZERO);
        }
        assert_eq!(breaker.lock().unwrap().state(), BreakerState::HalfOpen);

        // The losing racers changed nothing: the lone probe's failure still
        // drives the doubling schedule, capped at max_cooldown.
        let mut b = breaker.lock().unwrap();
        b.record(false, now);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        let mut t = now;
        for expected_ms in [200u64, 400, 800, 1000, 1000] {
            t += Duration::from_secs(2); // comfortably past any cooldown
            assert!(b.admit(t).is_ok(), "cooldown served: probe admitted");
            let rejection = b.admit(t).unwrap_err();
            assert_eq!(rejection.retry_after, Duration::from_millis(expected_ms));
            b.record(false, t);
        }
    }

    #[test]
    fn overload_trip_is_immediate() {
        let mut b = Breaker::new(fast_config());
        let t0 = Instant::now();
        b.trip_for_overload(t0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit(t0).is_err());
        // Tripping again while already open does not extend or re-count.
        b.trip_for_overload(t0 + Duration::from_millis(1));
        assert_eq!(b.trips(), 1);
    }
}

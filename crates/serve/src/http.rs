//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`]:
//! enough for the service's JSON request/response endpoints, hand-rolled
//! so the server stays dependency-free.
//!
//! Supported: request line + headers + `Content-Length` bodies, one
//! request per connection (`Connection: close` semantics). Not supported
//! (and rejected with typed status codes): chunked transfer encoding,
//! pipelining, bodies beyond [`MAX_BODY`].

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on a request body; larger submissions are rejected with
/// `413` instead of buffering without bound.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// Upper bound on the header block (request line + all headers).
const MAX_HEADER_BYTES: usize = 64 * 1024;

/// A parsed request: method, path, query parameters, and the raw body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercased as received).
    pub method: String,
    /// The path component, query string stripped (e.g. `/status`).
    pub path: String,
    /// Decoded `?key=value` pairs (no percent-decoding: the API only uses
    /// numeric ids and bare words).
    pub query: HashMap<String, String>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
}

/// Why a request could not be parsed, mapped to a status code.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Short machine-readable error tag.
    pub tag: &'static str,
}

impl HttpError {
    fn new(status: u16, tag: &'static str) -> Self {
        HttpError { status, tag }
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`HttpError`] with `400` on malformed syntax, `413` on oversized
/// bodies or header blocks, `501` on transfer encodings we don't speak.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut header_bytes = 0usize;

    reader
        .read_line(&mut line)
        .map_err(|_| HttpError::new(400, "bad_request_line"))?;
    header_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "bad_request_line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "bad_request_line"))?
        .to_string();

    let mut content_length = 0usize;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|_| HttpError::new(400, "bad_header"))?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::new(413, "headers_too_large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "bad_content_length"))?;
            } else if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
                chunked = true;
            }
        }
    }
    if chunked {
        return Err(HttpError::new(501, "transfer_encoding_unsupported"));
    }
    if content_length > MAX_BODY {
        return Err(HttpError::new(413, "body_too_large"));
    }

    let mut body_bytes = vec![0u8; content_length];
    reader
        .read_exact(&mut body_bytes)
        .map_err(|_| HttpError::new(400, "truncated_body"))?;
    let body = String::from_utf8(body_bytes).map_err(|_| HttpError::new(400, "body_not_utf8"))?;

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        match pair.split_once('=') {
            Some((k, v)) => query.insert(k.to_string(), v.to_string()),
            None => query.insert(pair.to_string(), String::new()),
        };
    }

    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// The reason phrase for the handful of status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete JSON response and flushes. Errors are swallowed: a
/// client that hung up mid-response is its own problem, not the server's.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn);
        writer.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = round_trip(
            "POST /submit?x=1&flag HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/submit");
        assert_eq!(req.query.get("x").map(String::as_str), Some("1"));
        assert_eq!(req.query.get("flag").map(String::as_str), Some(""));
        assert_eq!(req.body, "body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = round_trip("GET /metrics HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_chunked_and_oversize() {
        let e = round_trip("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert_eq!(e.status, 501);
        let e = round_trip(&format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        ))
        .unwrap_err();
        assert_eq!(e.status, 413);
    }
}

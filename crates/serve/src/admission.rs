//! Deadline-aware admission control: decide *before* queueing whether a
//! job's deadline is achievable, and at which rung of the degradation
//! ladder. The estimate comes from an EWMA of recent per-rung service
//! latencies (seeded with pessimistic priors until real samples arrive),
//! inflated by a safety factor and the expected queue wait. A job whose
//! deadline not even the all-VH staircase can meet is rejected with a
//! typed, retry-after-bearing error instead of being queued to die.

use std::time::Duration;

use flowc_compact::pipeline::VhStrategy;

/// The admission-facing rungs of the supervisor ladder, most to least
/// ambitious. Each maps to the [`VhStrategy`] that *enters* the internal
/// ladder at that rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeRung {
    /// Exact weighted MIP (falls back internally if the graph is large).
    ExactMip,
    /// Staged anytime MIP (exact path disabled).
    AnytimeMip,
    /// Greedy OCT heuristic + balancing.
    HeuristicOct,
    /// All-VH staircase: no search at all.
    Staircase,
}

/// Ladder order, most ambitious first.
pub const RUNGS: [ServeRung; 4] = [
    ServeRung::ExactMip,
    ServeRung::AnytimeMip,
    ServeRung::HeuristicOct,
    ServeRung::Staircase,
];

impl ServeRung {
    /// Stable wire/metric name.
    pub fn name(self) -> &'static str {
        match self {
            ServeRung::ExactMip => "exact-mip",
            ServeRung::AnytimeMip => "anytime-mip",
            ServeRung::HeuristicOct => "heuristic-oct",
            ServeRung::Staircase => "staircase",
        }
    }

    /// Parses a client-requested rung name.
    pub fn parse(name: &str) -> Option<ServeRung> {
        RUNGS.into_iter().find(|r| r.name() == name)
    }

    /// Index into [`RUNGS`] (0 = most ambitious).
    fn index(self) -> usize {
        RUNGS.iter().position(|&r| r == self).expect("in ladder")
    }

    /// The strategy that enters the supervisor ladder at this rung. The
    /// solver time limit is the job's remaining wall-clock — the budget
    /// deadline is the real enforcer; this just keeps the solver's own
    /// pacing consistent with it.
    pub fn strategy(self, gamma: f64, time_limit: Duration) -> VhStrategy {
        match self {
            ServeRung::ExactMip => VhStrategy::Weighted {
                gamma,
                time_limit,
                exact_node_limit: 80,
            },
            // exact_node_limit 0 skips the exact path: every graph takes
            // the staged anytime route.
            ServeRung::AnytimeMip => VhStrategy::Weighted {
                gamma,
                time_limit,
                exact_node_limit: 0,
            },
            ServeRung::HeuristicOct => VhStrategy::Heuristic { gamma },
            ServeRung::Staircase => VhStrategy::Staircase,
        }
    }
}

/// What admission decided for an accepted job.
#[derive(Debug, Clone, Copy)]
pub struct Admission {
    /// The rung the job will run at.
    pub rung: ServeRung,
    /// Whether that is below the rung the client asked for.
    pub degraded: bool,
    /// The latency estimate that justified the decision.
    pub estimate: Duration,
}

/// Rejection: not even the cheapest rung fits the deadline.
#[derive(Debug, Clone, Copy)]
pub struct Infeasible {
    /// Cheapest-rung estimate (what the deadline would need to cover).
    pub estimate: Duration,
    /// Suggested retry delay (the expected queue-drain time: retrying
    /// sooner cannot help if the deadline itself is the problem, but the
    /// queue contribution will have decayed by then).
    pub retry_after: Duration,
}

/// EWMA per-rung latency model.
#[derive(Debug)]
pub struct LatencyModel {
    /// Current estimate per rung, microseconds.
    ewma_us: [f64; RUNGS.len()],
    /// Samples folded in per rung.
    samples: [u64; RUNGS.len()],
    /// Smoothing factor for new samples.
    alpha: f64,
    /// Multiplier on the estimate before comparing to the deadline.
    safety: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        // Pessimistic priors, most ambitious slowest. They only matter
        // until the first few real samples arrive.
        LatencyModel {
            ewma_us: [2_000_000.0, 500_000.0, 50_000.0, 5_000.0],
            samples: [0; RUNGS.len()],
            alpha: 0.3,
            safety: 2.0,
        }
    }
}

impl LatencyModel {
    /// Folds one observed service latency for `rung` into the model.
    pub fn record(&mut self, rung: ServeRung, latency: Duration) {
        let i = rung.index();
        let us = latency.as_micros() as f64;
        if self.samples[i] == 0 {
            self.ewma_us[i] = us;
        } else {
            self.ewma_us[i] += self.alpha * (us - self.ewma_us[i]);
        }
        self.samples[i] += 1;
    }

    /// The current estimate for `rung`, safety factor *not* applied.
    pub fn estimate(&self, rung: ServeRung) -> Duration {
        Duration::from_micros(self.ewma_us[rung.index()] as u64)
    }

    /// Decides the highest rung (starting at `requested`) whose safety-
    /// inflated estimate plus the expected queue wait fits `deadline`.
    ///
    /// # Errors
    ///
    /// [`Infeasible`] when not even the staircase rung fits.
    pub fn plan(
        &self,
        requested: ServeRung,
        deadline: Duration,
        queue_wait: Duration,
    ) -> Result<Admission, Infeasible> {
        for &rung in &RUNGS[requested.index()..] {
            let estimate = self.estimate(rung);
            let needed = estimate.mul_f64(self.safety) + queue_wait;
            if needed <= deadline {
                return Ok(Admission {
                    rung,
                    degraded: rung != requested,
                    estimate,
                });
            }
        }
        Err(Infeasible {
            estimate: self.estimate(ServeRung::Staircase),
            retry_after: queue_wait.max(Duration::from_millis(1)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_admits_degrades_and_rejects() {
        let model = LatencyModel::default();
        // Generous deadline: the requested rung is admitted as-is.
        let adm = model
            .plan(ServeRung::ExactMip, Duration::from_secs(30), Duration::ZERO)
            .unwrap();
        assert_eq!(adm.rung, ServeRung::ExactMip);
        assert!(!adm.degraded);
        // 300ms deadline: exact (2s prior × 2) cannot fit, heuristic can.
        let adm = model
            .plan(
                ServeRung::ExactMip,
                Duration::from_millis(300),
                Duration::ZERO,
            )
            .unwrap();
        assert_eq!(adm.rung, ServeRung::HeuristicOct);
        assert!(adm.degraded);
        // 1ms deadline: not even the staircase (5ms prior × 2) fits.
        let rej = model
            .plan(
                ServeRung::ExactMip,
                Duration::from_millis(1),
                Duration::ZERO,
            )
            .unwrap_err();
        assert!(rej.estimate >= Duration::from_millis(1));
        assert!(rej.retry_after > Duration::ZERO);
    }

    #[test]
    fn queue_wait_pushes_jobs_down_the_ladder() {
        let model = LatencyModel::default();
        // Alone, heuristic (50ms × 2) fits a 150ms deadline...
        let adm = model
            .plan(
                ServeRung::HeuristicOct,
                Duration::from_millis(150),
                Duration::ZERO,
            )
            .unwrap();
        assert_eq!(adm.rung, ServeRung::HeuristicOct);
        // ...but a 100ms expected queue wait forces the staircase.
        let adm = model
            .plan(
                ServeRung::HeuristicOct,
                Duration::from_millis(150),
                Duration::from_millis(100),
            )
            .unwrap();
        assert_eq!(adm.rung, ServeRung::Staircase);
    }

    #[test]
    fn ewma_follows_observations() {
        let mut model = LatencyModel::default();
        // First sample replaces the prior outright.
        model.record(ServeRung::Staircase, Duration::from_millis(40));
        assert_eq!(
            model.estimate(ServeRung::Staircase),
            Duration::from_millis(40)
        );
        // Subsequent samples move the estimate smoothly.
        model.record(ServeRung::Staircase, Duration::from_millis(80));
        let e = model.estimate(ServeRung::Staircase);
        assert!(e > Duration::from_millis(40) && e < Duration::from_millis(80));
    }
}

//! The write-ahead job journal: crash durability for the service.
//!
//! Every job lifecycle transition (admitted, started, terminal) is
//! appended to a segment file as a CRC32-framed record *after* the
//! in-memory state changes, so on restart the journal is a lower bound
//! on what the dead server knew. Startup replay rebuilds the job table:
//! terminal jobs come back with their outcomes for result pickup,
//! non-terminal jobs are re-enqueued (at-least-once execution), and
//! client-supplied job keys make resubmission idempotent across the
//! crash.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/wal-<N>.log     append-only segments, N monotonically increasing
//! <dir>/snapshot.json   CRC32-enveloped compaction snapshot
//! ```
//!
//! Each segment record is framed `[u32 len][u32 crc32][payload]`, both
//! integers little-endian, the payload a compact JSON object. A restart
//! never appends to an old segment — it always opens a fresh one — so
//! a torn tail only ever needs to be *tolerated at read time*, never
//! repaired in place.
//!
//! ## Durability contract
//!
//! `admitted` and terminal records are fsynced before [`Journal::append`]
//! returns: an acked submission can never 404 after a crash, and a job
//! observed terminal can never silently re-run. `started` records are
//! group-committed (synced every [`JournalConfig::sync_batch`] appends or
//! when any stronger record syncs); losing one only downgrades a
//! `running` job to `queued` on replay, which re-enqueues it — the
//! at-least-once path that was already true.
//!
//! ## Replay semantics
//!
//! Snapshot first, then every segment in index order. Records apply
//! idempotently and monotonically (queued → running → terminal; first
//! terminal wins), so the crash window between "snapshot written" and
//! "sealed segments deleted" — where both cover the same records — is
//! harmless. Corruption inside the *last* segment is a torn tail: replay
//! stops there and counts it. Corruption in an earlier segment skips the
//! rest of that segment only, counts a checksum failure, and keeps going.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use flowc_report::{crc32, read_json_checked, write_json_checked, Json, ReadCheckError};

/// Absurd-length guard: a frame longer than this is corruption, not data.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// Journal tuning. The defaults suit the test-scale service; production
/// deployments mostly tune `sync_batch` (latency vs. replay precision).
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding segments and the snapshot (created if absent).
    pub dir: PathBuf,
    /// Records per segment before rotation.
    pub segment_max_records: usize,
    /// Sealed segments tolerated before compaction into the snapshot.
    pub max_segments: usize,
    /// Lazy (`started`) records to buffer before forcing an fsync.
    pub sync_batch: usize,
    /// Terminal jobs kept in the replay mirror (and thus the snapshot),
    /// mirroring the job table's bounded result retention.
    pub retain: usize,
}

impl JournalConfig {
    /// Defaults rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            segment_max_records: 1024,
            max_segments: 4,
            sync_batch: 8,
            retain: 1024,
        }
    }
}

/// Counters for the `/metrics` `journal` block and startup logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records appended since this process opened the journal.
    pub records_appended: u64,
    /// Records applied during startup replay (snapshot jobs + log records).
    pub records_replayed: u64,
    /// Torn tails truncated at replay (crash mid-append).
    pub torn_tail_truncations: u64,
    /// CRC/framing failures outside the tail (real corruption; the rest
    /// of that segment is skipped). A corrupt snapshot also counts here.
    pub checksum_failures: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Compactions (snapshot written, sealed segments deleted).
    pub compactions: u64,
    /// Appends that failed with an I/O error (service stayed up;
    /// durability for those records is lost).
    pub append_errors: u64,
}

/// One job's replayed (or mirrored) state. `body` is the original submit
/// body so a non-terminal job can be re-admitted through the same parse
/// path; it is dropped from snapshots once the job is terminal.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job id.
    pub id: u64,
    /// Client-supplied idempotency key, if any.
    pub key: Option<String>,
    /// Original submit body (empty for terminal jobs restored from a
    /// snapshot — they will never run again).
    pub body: String,
    /// Display label.
    pub label: String,
    /// Admitted rung (wire name).
    pub rung: String,
    /// Whether admission degraded the requested rung.
    pub degraded: bool,
    /// Queue priority.
    pub priority: u8,
    /// Lifecycle state (wire name: queued/running/done/failed/…).
    pub state: String,
    /// Terminal outcome body.
    pub outcome: Option<Json>,
}

impl JobRecord {
    /// Whether the job had reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        !matches!(self.state.as_str(), "queued" | "running")
    }
}

/// A lifecycle record to append.
#[derive(Debug, Clone)]
pub enum Record {
    /// Job admitted into the queue (synced immediately).
    Admitted {
        /// The job id.
        id: u64,
        /// Client idempotency key.
        key: Option<String>,
        /// Original submit body.
        body: String,
        /// Display label.
        label: String,
        /// Admitted rung (wire name).
        rung: String,
        /// Whether admission degraded the rung.
        degraded: bool,
        /// Queue priority.
        priority: u8,
    },
    /// A worker claimed the job (group-committed, lazy sync).
    Started {
        /// The job id.
        id: u64,
    },
    /// The job reached a terminal state (synced immediately).
    Terminal {
        /// The job id.
        id: u64,
        /// Terminal state wire name (done/failed/cancelled/shed).
        state: String,
        /// The outcome body stored for result pickup.
        outcome: Json,
    },
}

impl Record {
    fn to_json(&self) -> Json {
        match self {
            Record::Admitted {
                id,
                key,
                body,
                label,
                rung,
                degraded,
                priority,
            } => Json::Obj(vec![
                ("kind".into(), Json::str("admitted")),
                ("id".into(), Json::Num(*id as f64)),
                (
                    "key".into(),
                    key.as_ref().map_or(Json::Null, |k| Json::str(k.clone())),
                ),
                ("body".into(), Json::str(body.clone())),
                ("label".into(), Json::str(label.clone())),
                ("rung".into(), Json::str(rung.clone())),
                ("degraded".into(), Json::Bool(*degraded)),
                ("priority".into(), Json::Num(f64::from(*priority))),
            ]),
            Record::Started { id } => Json::Obj(vec![
                ("kind".into(), Json::str("started")),
                ("id".into(), Json::Num(*id as f64)),
            ]),
            Record::Terminal { id, state, outcome } => Json::Obj(vec![
                ("kind".into(), Json::str("terminal")),
                ("id".into(), Json::Num(*id as f64)),
                ("state".into(), Json::str(state.clone())),
                ("outcome".into(), outcome.clone()),
            ]),
        }
    }

    fn requires_sync(&self) -> bool {
        !matches!(self, Record::Started { .. })
    }
}

/// What startup replay recovered.
#[derive(Debug)]
pub struct Replay {
    /// Every job the journal knows, sorted by id: terminal ones for
    /// result pickup, non-terminal ones for re-enqueue.
    pub jobs: Vec<JobRecord>,
    /// First id safe to allocate (strictly above every replayed id).
    pub next_id: u64,
    /// Replay-time counters (torn tails, checksum failures, records).
    pub stats: JournalStats,
}

struct Inner {
    seg: File,
    seg_index: u64,
    seg_records: usize,
    /// Sealed segment indices still on disk (compaction deletes them).
    sealed: Vec<u64>,
    unsynced: usize,
    mirror: HashMap<u64, JobRecord>,
    /// Terminal ids oldest-first, for bounded mirror retention.
    terminal_fifo: Vec<u64>,
    next_id: u64,
    stats: JournalStats,
}

/// The write-ahead journal. All appends serialize through one mutex —
/// the records are tiny and the syncs dominate, so a finer lock would
/// buy nothing.
pub struct Journal {
    config: JournalConfig,
    inner: Mutex<Inner>,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index}.log"))
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.json")
}

fn encode_frame(payload: &str) -> Vec<u8> {
    let bytes = payload.as_bytes();
    let mut frame = Vec::with_capacity(8 + bytes.len());
    frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(bytes).to_le_bytes());
    frame.extend_from_slice(bytes);
    frame
}

/// One segment's decode result: the records that verified, and whether
/// the segment ended cleanly or in garbage.
enum SegmentEnd {
    Clean,
    Corrupt,
}

fn decode_segment(bytes: &[u8]) -> (Vec<Json>, SegmentEnd) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        let Some(header) = bytes.get(at..at + 8) else {
            return (records, SegmentEnd::Corrupt);
        };
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            return (records, SegmentEnd::Corrupt);
        }
        let Some(payload) = bytes.get(at + 8..at + 8 + len as usize) else {
            return (records, SegmentEnd::Corrupt);
        };
        if crc32(payload) != crc {
            return (records, SegmentEnd::Corrupt);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return (records, SegmentEnd::Corrupt);
        };
        let Ok(json) = Json::parse(text) else {
            return (records, SegmentEnd::Corrupt);
        };
        records.push(json);
        at += 8 + len as usize;
    }
    (records, SegmentEnd::Clean)
}

fn job_to_json(job: &JobRecord, terminal: bool) -> Json {
    Json::Obj(vec![
        ("id".into(), Json::Num(job.id as f64)),
        (
            "key".into(),
            job.key
                .as_ref()
                .map_or(Json::Null, |k| Json::str(k.clone())),
        ),
        // Terminal jobs never run again: drop the (possibly large)
        // circuit body from snapshots.
        (
            "body".into(),
            Json::str(if terminal {
                String::new()
            } else {
                job.body.clone()
            }),
        ),
        ("label".into(), Json::str(job.label.clone())),
        ("rung".into(), Json::str(job.rung.clone())),
        ("degraded".into(), Json::Bool(job.degraded)),
        ("priority".into(), Json::Num(f64::from(job.priority))),
        ("state".into(), Json::str(job.state.clone())),
        ("outcome".into(), job.outcome.clone().unwrap_or(Json::Null)),
    ])
}

fn job_from_json(json: &Json) -> Option<JobRecord> {
    Some(JobRecord {
        id: json.get("id").and_then(Json::as_u64)?,
        key: json.get("key").and_then(Json::as_str).map(str::to_string),
        body: json
            .get("body")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        label: json
            .get("label")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string(),
        rung: json
            .get("rung")
            .and_then(Json::as_str)
            .unwrap_or("exact-mip")
            .to_string(),
        degraded: json
            .get("degraded")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        priority: json
            .get("priority")
            .and_then(Json::as_u64)
            .map_or(0, |p| u8::try_from(p.min(9)).expect("capped at 9")),
        state: json
            .get("state")
            .and_then(Json::as_str)
            .unwrap_or("queued")
            .to_string(),
        outcome: match json.get("outcome") {
            None | Some(Json::Null) => None,
            Some(o) => Some(o.clone()),
        },
    })
}

impl Inner {
    /// Applies one replayed/appended record to the mirror. Idempotent and
    /// monotonic: duplicates are no-ops and a terminal state is never
    /// overwritten, so replaying a snapshot plus stale segments that
    /// cover the same records converges to the same table.
    fn apply(&mut self, record: &Record, retain: usize) {
        match record {
            Record::Admitted {
                id,
                key,
                body,
                label,
                rung,
                degraded,
                priority,
            } => {
                self.next_id = self.next_id.max(id + 1);
                self.mirror.entry(*id).or_insert_with(|| JobRecord {
                    id: *id,
                    key: key.clone(),
                    body: body.clone(),
                    label: label.clone(),
                    rung: rung.clone(),
                    degraded: *degraded,
                    priority: *priority,
                    state: "queued".into(),
                    outcome: None,
                });
            }
            Record::Started { id } => {
                if let Some(job) = self.mirror.get_mut(id) {
                    if job.state == "queued" {
                        job.state = "running".into();
                    }
                }
            }
            Record::Terminal { id, state, outcome } => {
                let Some(job) = self.mirror.get_mut(id) else {
                    return;
                };
                if job.is_terminal() {
                    return;
                }
                job.state = state.clone();
                job.outcome = Some(outcome.clone());
                job.body = String::new();
                self.terminal_fifo.push(*id);
                while self.terminal_fifo.len() > retain {
                    let oldest = self.terminal_fifo.remove(0);
                    self.mirror.remove(&oldest);
                }
            }
        }
    }

    fn apply_json(&mut self, json: &Json, retain: usize) {
        let Some(kind) = json.get("kind").and_then(Json::as_str) else {
            return;
        };
        let record = match kind {
            "admitted" => job_from_json(json).map(|j| Record::Admitted {
                id: j.id,
                key: j.key,
                body: j.body,
                label: j.label,
                rung: j.rung,
                degraded: j.degraded,
                priority: j.priority,
            }),
            "started" => json
                .get("id")
                .and_then(Json::as_u64)
                .map(|id| Record::Started { id }),
            "terminal" => {
                let id = json.get("id").and_then(Json::as_u64);
                let state = json.get("state").and_then(Json::as_str);
                match (id, state) {
                    (Some(id), Some(state)) => Some(Record::Terminal {
                        id,
                        state: state.to_string(),
                        outcome: json.get("outcome").cloned().unwrap_or(Json::Null),
                    }),
                    _ => None,
                }
            }
            _ => None,
        };
        if let Some(record) = record {
            self.stats.records_replayed += 1;
            self.apply(&record, retain);
        }
    }

    fn snapshot_json(&self) -> Json {
        let mut ids: Vec<u64> = self.mirror.keys().copied().collect();
        ids.sort_unstable();
        let jobs = ids
            .iter()
            .map(|id| {
                let job = &self.mirror[id];
                job_to_json(job, job.is_terminal())
            })
            .collect();
        Json::Obj(vec![
            ("next_id".into(), Json::Num(self.next_id as f64)),
            ("jobs".into(), Json::Arr(jobs)),
        ])
    }

    /// Writes the snapshot covering everything in the mirror, then
    /// deletes the sealed segments it supersedes. A crash between the
    /// two steps leaves stale segments whose records replay idempotently
    /// over the snapshot.
    fn compact(&mut self, dir: &Path) -> io::Result<()> {
        write_json_checked(&snapshot_path(dir), &self.snapshot_json()).map_err(io::Error::from)?;
        self.stats.compactions += 1;
        // Crash window under test: snapshot durable, old segments still
        // on disk. Replay must converge to the same table.
        flowc_failpoint::maybe_crash("serve.journal.compact");
        for index in self.sealed.drain(..) {
            let _ = fs::remove_file(segment_path(dir, index));
        }
        Ok(())
    }
}

impl Journal {
    /// Opens (creating if needed) the journal at `config.dir`, replays
    /// the snapshot and every segment, and starts a fresh active segment.
    ///
    /// # Errors
    ///
    /// Only environmental failures (directory not creatable, segment not
    /// creatable). Corruption never errors: it is tolerated, counted,
    /// and reported through [`Replay::stats`].
    pub fn open(config: JournalConfig) -> io::Result<(Journal, Replay)> {
        fs::create_dir_all(&config.dir)?;
        let mut inner = Inner {
            // Placeholder; replaced below once the segment index is known.
            seg: File::create(config.dir.join(".open.tmp"))?,
            seg_index: 0,
            seg_records: 0,
            sealed: Vec::new(),
            unsynced: 0,
            mirror: HashMap::new(),
            terminal_fifo: Vec::new(),
            next_id: 1,
            stats: JournalStats::default(),
        };

        // 1. Snapshot (if any): the compacted prefix of history.
        match read_json_checked(&snapshot_path(&config.dir)) {
            Ok(snap) => {
                inner.next_id = snap.get("next_id").and_then(Json::as_u64).unwrap_or(1);
                let jobs = snap.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
                for j in jobs {
                    if let Some(job) = job_from_json(j) {
                        inner.stats.records_replayed += 1;
                        inner.next_id = inner.next_id.max(job.id + 1);
                        if job.is_terminal() {
                            inner.terminal_fifo.push(job.id);
                        }
                        inner.mirror.insert(job.id, job);
                    }
                }
            }
            Err(ReadCheckError::Missing) => {}
            Err(_) => inner.stats.checksum_failures += 1,
        }

        // 2. Segments, in index order. Only the last may be torn.
        let mut indices: Vec<u64> = fs::read_dir(&config.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_string_lossy().into_owned();
                name.strip_prefix("wal-")?
                    .strip_suffix(".log")?
                    .parse::<u64>()
                    .ok()
            })
            .collect();
        indices.sort_unstable();
        for (pos, &index) in indices.iter().enumerate() {
            let last = pos + 1 == indices.len();
            let bytes = fs::read(segment_path(&config.dir, index)).unwrap_or_default();
            let (records, end) = decode_segment(&bytes);
            for json in &records {
                inner.apply_json(json, config.retain);
            }
            if matches!(end, SegmentEnd::Corrupt) {
                if last {
                    inner.stats.torn_tail_truncations += 1;
                } else {
                    inner.stats.checksum_failures += 1;
                }
            }
        }

        // 3. Fresh active segment strictly above everything on disk.
        let seg_index = indices.last().map_or(1, |&i| i + 1);
        inner.seg = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&config.dir, seg_index))?;
        inner.seg_index = seg_index;
        inner.sealed = indices;
        let _ = fs::remove_file(config.dir.join(".open.tmp"));

        // 4. Crash-looped servers must not accrete segments forever.
        if inner.sealed.len() >= config.max_segments {
            let _ = inner.compact(&config.dir);
        }

        let mut jobs: Vec<JobRecord> = inner.mirror.values().cloned().collect();
        jobs.sort_unstable_by_key(|j| j.id);
        let replay = Replay {
            jobs,
            next_id: inner.next_id,
            stats: inner.stats,
        };
        Ok((
            Journal {
                config,
                inner: Mutex::new(inner),
            },
            replay,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one record: mirror update, framed write, sync policy,
    /// rotation, compaction. I/O failures are counted and swallowed —
    /// the service keeps running with durability degraded rather than
    /// failing live traffic.
    pub fn append(&self, record: &Record) {
        let mut inner = self.lock();
        inner.apply(record, self.config.retain);
        flowc_failpoint::maybe_crash("serve.journal.append");
        let frame = encode_frame(&record.to_json().to_compact());
        if flowc_failpoint::hit("serve.journal.torn") == flowc_failpoint::Action::Crash {
            // Simulate a crash mid-append: half a frame reaches the OS,
            // then the process dies without unwinding. Replay must
            // truncate exactly this record and keep everything before it.
            let _ = inner.seg.write_all(&frame[..frame.len() / 2]);
            let _ = inner.seg.flush();
            std::process::abort();
        }
        let wrote = inner.seg.write_all(&frame).and_then(|()| {
            inner.unsynced += 1;
            if record.requires_sync() || inner.unsynced >= self.config.sync_batch {
                inner.unsynced = 0;
                inner.seg.sync_all()
            } else {
                Ok(())
            }
        });
        match wrote {
            Ok(()) => {
                inner.stats.records_appended += 1;
                inner.seg_records += 1;
            }
            Err(_) => {
                inner.stats.append_errors += 1;
                return;
            }
        }
        if inner.seg_records >= self.config.segment_max_records {
            let _ = self.rotate(&mut inner);
        }
    }

    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        inner.seg.sync_all()?;
        let next = inner.seg_index + 1;
        // Crash window under test: the old segment is sealed and synced,
        // the new one does not exist yet. Replay opens index `next` fresh.
        flowc_failpoint::maybe_crash("serve.journal.rotate");
        inner.seg = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(segment_path(&self.config.dir, next))?;
        let sealed = inner.seg_index;
        inner.seg_index = next;
        inner.seg_records = 0;
        inner.unsynced = 0;
        inner.sealed.push(sealed);
        inner.stats.rotations += 1;
        if inner.sealed.len() >= self.config.max_segments {
            inner.compact(&self.config.dir)?;
        }
        Ok(())
    }

    /// A snapshot of the journal counters.
    pub fn stats(&self) -> JournalStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("flowc-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn admitted(id: u64, key: Option<&str>) -> Record {
        Record::Admitted {
            id,
            key: key.map(str::to_string),
            body: format!("{{\"circuit\": \"dec\", \"format\": \"bench\", \"n\": {id}}}"),
            label: format!("job-{id}"),
            rung: "heuristic-oct".into(),
            degraded: false,
            priority: 3,
        }
    }

    fn terminal(id: u64, state: &str) -> Record {
        Record::Terminal {
            id,
            state: state.into(),
            outcome: Json::Obj(vec![("rows".into(), Json::Num(id as f64))]),
        }
    }

    fn config(dir: &Path) -> JournalConfig {
        JournalConfig::new(dir)
    }

    #[test]
    fn replay_round_trips_lifecycles_and_resumes_ids() {
        let dir = temp_dir("roundtrip");
        {
            let (journal, replay) = Journal::open(config(&dir)).unwrap();
            assert!(replay.jobs.is_empty());
            assert_eq!(replay.next_id, 1);
            journal.append(&admitted(1, Some("k-1")));
            journal.append(&Record::Started { id: 1 });
            journal.append(&terminal(1, "done"));
            journal.append(&admitted(2, None));
            journal.append(&Record::Started { id: 2 });
            journal.append(&admitted(3, Some("k-3")));
            assert_eq!(journal.stats().records_appended, 6);
        }
        let (_journal, replay) = Journal::open(config(&dir)).unwrap();
        assert_eq!(replay.next_id, 4);
        assert_eq!(replay.stats.records_replayed, 6);
        assert_eq!(replay.stats.torn_tail_truncations, 0);
        let by_id: HashMap<u64, &JobRecord> = replay.jobs.iter().map(|j| (j.id, j)).collect();
        assert_eq!(by_id[&1].state, "done");
        assert!(by_id[&1].is_terminal());
        assert_eq!(by_id[&1].key.as_deref(), Some("k-1"));
        assert_eq!(
            by_id[&1]
                .outcome
                .as_ref()
                .unwrap()
                .get("rows")
                .and_then(Json::as_u64),
            Some(1)
        );
        // The running job comes back as running (re-enqueue candidate),
        // with its submit body intact for re-parsing.
        assert_eq!(by_id[&2].state, "running");
        assert!(by_id[&2].body.contains("\"n\": 2"));
        assert_eq!(by_id[&3].state, "queued");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = temp_dir("torn");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append(&admitted(1, None));
            journal.append(&admitted(2, None));
        }
        // Tear the active segment's tail: chop the last record mid-frame.
        let seg = segment_path(&dir, 1);
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();
        let (_journal, replay) = Journal::open(config(&dir)).unwrap();
        assert_eq!(replay.stats.torn_tail_truncations, 1);
        assert_eq!(replay.jobs.len(), 1, "the complete prefix survives");
        assert_eq!(replay.jobs[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_stream_corruption_skips_the_segment_not_the_journal() {
        let dir = temp_dir("midcorrupt");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append(&admitted(1, None));
        }
        // Corrupt segment 1's payload, then write more into segment 2.
        let seg1 = segment_path(&dir, 1);
        let mut bytes = fs::read(&seg1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&seg1, &bytes).unwrap();
        {
            let (journal, replay) = Journal::open(config(&dir)).unwrap();
            // Segment 1 was last at this point: counted as torn tail.
            assert_eq!(replay.stats.torn_tail_truncations, 1);
            journal.append(&admitted(2, None));
        }
        let (_journal, replay) = Journal::open(config(&dir)).unwrap();
        // Now segment 1 is mid-stream: a checksum failure, and segment
        // 2's record still replays.
        assert_eq!(replay.stats.checksum_failures, 1);
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].id, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_compacts_into_a_snapshot_and_stale_segments_stay_idempotent() {
        let dir = temp_dir("compact");
        let mut cfg = config(&dir);
        cfg.segment_max_records = 4;
        cfg.max_segments = 2;
        {
            let (journal, _) = Journal::open(cfg.clone()).unwrap();
            for id in 1..=10 {
                journal.append(&admitted(id, None));
                journal.append(&terminal(id, "done"));
            }
            let stats = journal.stats();
            assert!(stats.rotations >= 2, "rotations: {}", stats.rotations);
            assert!(stats.compactions >= 1, "compactions: {}", stats.compactions);
        }
        assert!(snapshot_path(&dir).exists());
        let (_journal, replay) = Journal::open(cfg.clone()).unwrap();
        assert_eq!(replay.jobs.len(), 10);
        assert!(replay.jobs.iter().all(JobRecord::is_terminal));
        assert_eq!(replay.next_id, 11);
        // Terminal snapshot entries carry outcomes but no bodies.
        assert!(replay.jobs.iter().all(|j| j.body.is_empty()));
        assert!(replay.jobs.iter().all(|j| j.outcome.is_some()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_snapshot_is_a_counted_miss_not_a_crash() {
        let dir = temp_dir("snapcorrupt");
        let mut cfg = config(&dir);
        cfg.segment_max_records = 2;
        cfg.max_segments = 1;
        {
            let (journal, _) = Journal::open(cfg.clone()).unwrap();
            for id in 1..=4 {
                journal.append(&admitted(id, None));
            }
        }
        let snap = snapshot_path(&dir);
        assert!(snap.exists());
        let text = fs::read_to_string(&snap).unwrap();
        fs::write(&snap, text.replace("queued", "queueX")).unwrap();
        let (_journal, replay) = Journal::open(cfg).unwrap();
        assert!(replay.stats.checksum_failures >= 1);
        // Whatever still lives in un-compacted segments replays; the
        // snapshot's jobs are lost but the server comes up.
        assert!(replay.jobs.len() < 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirror_retention_is_bounded() {
        let dir = temp_dir("retain");
        let mut cfg = config(&dir);
        cfg.retain = 3;
        {
            let (journal, _) = Journal::open(cfg.clone()).unwrap();
            for id in 1..=8 {
                journal.append(&admitted(id, None));
                journal.append(&terminal(id, "done"));
            }
            journal.append(&admitted(99, None));
        }
        let (_journal, replay) = Journal::open(cfg).unwrap();
        let terminal_count = replay.jobs.iter().filter(|j| j.is_terminal()).count();
        assert_eq!(terminal_count, 3, "only the newest terminals retained");
        assert!(
            replay.jobs.iter().any(|j| j.id == 99),
            "live jobs never evicted"
        );
        assert_eq!(replay.next_id, 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_and_out_of_order_records_replay_idempotently() {
        let dir = temp_dir("idempotent");
        {
            let (journal, _) = Journal::open(config(&dir)).unwrap();
            journal.append(&admitted(1, Some("k")));
            journal.append(&terminal(1, "done"));
            // Duplicates and post-terminal transitions must be no-ops —
            // exactly what replaying a stale segment over a snapshot does.
            journal.append(&admitted(1, Some("k")));
            journal.append(&Record::Started { id: 1 });
            journal.append(&terminal(1, "failed"));
            journal.append(&Record::Started { id: 42 });
        }
        let (_journal, replay) = Journal::open(config(&dir)).unwrap();
        assert_eq!(replay.jobs.len(), 1);
        assert_eq!(replay.jobs[0].state, "done", "first terminal wins");
        let _ = fs::remove_dir_all(&dir);
    }
}

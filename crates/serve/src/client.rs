//! Minimal HTTP/1.1 client for talking to a running `flowc-serve`.
//!
//! One connection per request (the server speaks `Connection: close`), a
//! bounded read/write timeout so a wedged server can never hang the
//! client, and the response body decoded straight into [`Json`].

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use flowc_report::Json;

/// Per-request I/O timeout: generous enough for a slow `/metrics` scrape,
/// small enough that a dead server fails the client promptly.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Performs one HTTP exchange and returns `(status, parsed body)`.
///
/// An empty body decodes as [`Json::Null`].
///
/// # Errors
///
/// A human-readable message when the connection fails, times out, or the
/// server answers something that is not HTTP-with-JSON.
pub fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, Json), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(IO_TIMEOUT)).ok();
    stream.set_write_timeout(Some(IO_TIMEOUT)).ok();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(req.as_bytes())
        .map_err(|e| format!("send to {addr}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read from {addr}: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed HTTP response from {addr}"))?;
    let payload = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = if payload.trim().is_empty() {
        Json::Null
    } else {
        Json::parse(payload).map_err(|e| format!("response body from {addr}: {e}"))?
    };
    Ok((status, json))
}

/// Formats a typed error body (`{"error", "message", "retry_after_ms"?}`)
/// into a one-line human message, keeping the machine tag visible.
pub fn describe_error(status: u16, body: &Json) -> String {
    let tag = body.get("error").and_then(Json::as_str).unwrap_or("error");
    let message = body.get("message").and_then(Json::as_str).unwrap_or("");
    match body.get("retry_after_ms").and_then(Json::as_u64) {
        Some(ms) => format!("server answered {status} {tag}: {message} (retry after {ms} ms)"),
        None => format!("server answered {status} {tag}: {message}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};

    #[test]
    fn round_trips_against_a_real_server() {
        let server = Server::start(ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let (status, body) = request(&addr, "GET", "/healthz", "").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("ok").and_then(Json::as_bool), Some(true));
        let (status, body) = request(&addr, "GET", "/nope", "").unwrap();
        assert_eq!(status, 404);
        assert!(describe_error(status, &body).contains("404"));
        server.shutdown();
    }
}

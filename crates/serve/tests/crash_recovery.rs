//! Crash-recovery integration tests: run the real `flowc-serve` binary
//! with `--journal`, kill it for real (SIGKILL, plus seeded failpoint
//! aborts with the `failpoints` feature), restart it over the same
//! directory, and assert the durability contract — every admitted job
//! reaches a consistent terminal state exactly once, terminal outcomes
//! survive verbatim, job keys dedupe across the crash, and corrupted
//! journal bytes are detected and truncated, never replayed.
//!
//! Journal directories live under `target/crash-recovery/` so CI can
//! upload them as artifacts when a run fails.

use std::time::{Duration, Instant};

use flowc_report::Json;

mod common;
#[cfg(feature = "failpoints")]
use common::try_call;
use common::{await_terminal, call, metrics, scratch_dir, submit, ServerProc};

fn fast_job(key: &str, priority: u8) -> String {
    format!(
        r#"{{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 60000, "priority": {priority}, "job_key": "{key}"}}"#
    )
}

fn chaos_job(key: &str, chaos: &str) -> String {
    format!(
        r#"{{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 60000, "job_key": "{key}", "chaos": "{chaos}"}}"#
    )
}

fn journal_metric(m: &Json, name: &str) -> u64 {
    m.get("journal")
        .and_then(|j| j.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing journal metric {name}: {}", m.to_compact()))
}

fn state_of(addr: std::net::SocketAddr, id: u64) -> String {
    let (status, json) = call(addr, "GET", &format!("/status?id={id}"), "");
    assert_eq!(status, 200, "status for {id}: {}", json.to_compact());
    json.get("state")
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

/// The headline property: a 50-job mixed workload (priorities spread,
/// worker stalls, a worker panic, a cancellation), SIGKILLed mid-flight,
/// then restarted over the same journal. Nothing is lost, nothing runs
/// twice to a different answer, and the id counter never rewinds.
#[test]
fn sigkill_mid_workload_loses_no_job() {
    let dir = scratch_dir("crash-recovery", "sigkill");
    let journal = dir.join("journal");
    let jflag = journal.to_str().unwrap().to_string();
    let flags = [
        "--journal",
        jflag.as_str(),
        "--workers",
        "2",
        "--queue-cap",
        "128",
        "--enable-chaos",
    ];
    let mut server = ServerProc::spawn(&flags, &[]);
    let addr = server.addr;

    // 50 mixed jobs: mostly fast, two 3s worker stalls so work is still
    // in flight when the kill lands, one worker panic, spread priorities.
    let mut ids: Vec<(String, u64)> = Vec::new();
    for i in 0..50u64 {
        let key = format!("job-{i}");
        let body = match i {
            10 | 30 => chaos_job(&key, "stall:3000"),
            20 => chaos_job(&key, "panic-worker"),
            _ => fast_job(&key, (i % 10) as u8),
        };
        let (status, json) = submit(addr, &body);
        assert_eq!(status, 200, "{}", json.to_compact());
        ids.push((key, json.get("id").and_then(Json::as_u64).unwrap()));
    }
    // Cancel one of the late (still queued or running) submissions; its
    // terminal state must also survive the crash.
    let (cancel_status, cancel_json) = call(
        addr,
        "POST",
        "/cancel",
        &format!("{{\"id\": {}}}", ids[45].1),
    );
    assert_eq!(cancel_status, 200, "{}", cancel_json.to_compact());

    // Let part of the workload settle and capture those durable outcomes.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut settled: Vec<(u64, String, String)> = Vec::new();
    loop {
        settled.clear();
        for (_, id) in &ids {
            let state = state_of(addr, *id);
            if !matches!(state.as_str(), "queued" | "running") {
                let (rs, rjson) = call(addr, "GET", &format!("/result?id={id}"), "");
                assert_eq!(rs, 200, "result for {id}: {}", rjson.to_compact());
                settled.push((*id, state, rjson.get("outcome").unwrap().to_compact()));
            }
        }
        if settled.len() >= 10 {
            break;
        }
        assert!(Instant::now() < deadline, "workload never made progress");
        std::thread::sleep(Duration::from_millis(50));
    }

    // The real crash: SIGKILL, mid-workload. No drain, no destructors.
    server.kill();
    drop(server);

    let server = ServerProc::spawn(&flags, &[]);
    let addr = server.addr;
    let m = metrics(addr);
    assert!(journal_metric(&m, "records_replayed") > 0);
    assert_eq!(journal_metric(&m, "checksum_failures"), 0);
    assert_eq!(
        journal_metric(&m, "restored_terminal"),
        settled.len() as u64,
        "every pre-kill terminal job is restored: {}",
        m.to_compact()
    );

    // Every admitted job reaches a terminal state; the vast majority
    // complete (the panic job fails typed, the cancelled job may stay
    // cancelled).
    let mut done = 0;
    for (_, id) in &ids {
        let state = await_terminal(addr, *id, Duration::from_secs(60));
        assert!(
            matches!(state.as_str(), "done" | "failed" | "cancelled"),
            "job {id}: unexpected terminal `{state}`"
        );
        if state == "done" {
            done += 1;
        }
    }
    assert!(done >= 45, "only {done}/50 jobs completed");

    // Pre-kill terminal outcomes are restored verbatim — not recomputed.
    for (id, state, outcome) in &settled {
        assert_eq!(
            state_of(addr, *id),
            *state,
            "job {id} changed terminal state across the crash"
        );
        let (rs, rjson) = call(addr, "GET", &format!("/result?id={id}"), "");
        assert_eq!(rs, 200);
        assert_eq!(
            rjson.get("outcome").unwrap().to_compact(),
            *outcome,
            "job {id} outcome changed across the crash"
        );
    }

    // Idempotent resubmission: keys recovered from the journal dedupe to
    // the original job instead of running it again.
    for (key, id) in ids.iter().take(8) {
        let (s, json) = submit(addr, &fast_job(key, 0));
        assert_eq!(s, 200, "{}", json.to_compact());
        assert_eq!(
            json.get("duplicate").and_then(Json::as_bool),
            Some(true),
            "key {key} was not deduplicated: {}",
            json.to_compact()
        );
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(*id));
    }

    // Fresh submissions never reuse a recovered id.
    let max_id = ids.iter().map(|(_, id)| *id).max().unwrap();
    let (s, json) = submit(addr, &fast_job("fresh-after-recovery", 5));
    assert_eq!(s, 200, "{}", json.to_compact());
    let new_id = json.get("id").and_then(Json::as_u64).unwrap();
    assert!(new_id > max_id, "id counter rewound: {new_id} <= {max_id}");
    assert_eq!(
        await_terminal(addr, new_id, Duration::from_secs(30)),
        "done"
    );

    // The journal directory doubles as the disk label cache: staircase
    // labelings are deterministic, so they were written through.
    let cached = std::fs::read_dir(journal.join("cache"))
        .map(|d| d.count())
        .unwrap_or(0);
    assert!(cached > 0, "no labelings persisted to the disk cache");
}

/// Flipping a byte inside a sealed-and-synced segment must be detected by
/// the CRC framing on replay: the journal truncates/skips from the bad
/// frame, counts the detection, and the server still comes up.
#[test]
fn corrupt_segment_bytes_are_detected_not_replayed() {
    let dir = scratch_dir("crash-recovery", "corrupt");
    let journal = dir.join("journal");
    let jflag = journal.to_str().unwrap().to_string();
    let flags = ["--journal", jflag.as_str(), "--workers", "2"];
    {
        let mut server = ServerProc::spawn(&flags, &[]);
        let addr = server.addr;
        let mut ids = Vec::new();
        for i in 0..12 {
            let (s, json) = submit(addr, &fast_job(&format!("c-{i}"), 0));
            assert_eq!(s, 200, "{}", json.to_compact());
            ids.push(json.get("id").and_then(Json::as_u64).unwrap());
        }
        for id in ids {
            assert_eq!(await_terminal(addr, id, Duration::from_secs(30)), "done");
        }
        server.kill();
    }

    let segment = std::fs::read_dir(&journal)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("wal-"))
        .expect("a journal segment")
        .path();
    let mut bytes = std::fs::read(&segment).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&segment, &bytes).unwrap();

    let server = ServerProc::spawn(&flags, &[]);
    let m = metrics(server.addr);
    let detected =
        journal_metric(&m, "torn_tail_truncations") + journal_metric(&m, "checksum_failures");
    assert!(
        detected >= 1,
        "corruption went undetected: {}",
        m.to_compact()
    );
    // Everything before the flipped byte still replays.
    assert!(journal_metric(&m, "records_replayed") >= 1);
}

/// Failpoint-driven crashes (compiled only with `--features failpoints`):
/// a torn tail written mid-frame, and an abort between "snapshot written"
/// and "sealed segments deleted".
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;

    /// The 25th journal append writes half a frame, flushes it, and
    /// aborts the process — the torn tail a power cut leaves behind. On
    /// restart exactly one truncation is counted, no checksum failures,
    /// and every surviving job drains to a terminal state.
    #[test]
    fn injected_torn_tail_truncates_on_replay() {
        let dir = scratch_dir("crash-recovery", "torn");
        let journal = dir.join("journal");
        let jflag = journal.to_str().unwrap().to_string();
        let flags = [
            "--journal",
            jflag.as_str(),
            "--workers",
            "2",
            "--queue-cap",
            "128",
        ];
        let mut server = ServerProc::spawn(
            &flags,
            &[("FLOWC_FAILPOINTS", "serve.journal.torn=crash@25")],
        );
        let addr = server.addr;

        // Submit until the failpoint kills the server mid-write; worker
        // threads are appending started/terminal records concurrently, so
        // the abort can land under any of them.
        let mut submitted = Vec::new();
        for i in 0..60 {
            match try_call(addr, "POST", "/submit", &fast_job(&format!("t-{i}"), 0)) {
                Ok((200, json)) => {
                    submitted.push(json.get("id").and_then(Json::as_u64).unwrap());
                }
                _ => break,
            }
        }
        assert!(
            server.wait_for_death(Duration::from_secs(30)),
            "torn-tail failpoint never fired"
        );
        drop(server);

        let server = ServerProc::spawn(&flags, &[]);
        let addr = server.addr;
        let m = metrics(addr);
        assert_eq!(journal_metric(&m, "torn_tail_truncations"), 1);
        assert_eq!(journal_metric(&m, "checksum_failures"), 0);
        assert!(journal_metric(&m, "records_replayed") >= 1);

        // At most the torn record is lost; every id the journal still
        // knows reaches a terminal state.
        let mut known = 0;
        for id in submitted {
            match try_call(addr, "GET", &format!("/status?id={id}"), "") {
                Ok((200, _)) => {
                    await_terminal(addr, id, Duration::from_secs(60));
                    known += 1;
                }
                Ok((404, _)) => {} // the record inside the torn tail
                other => panic!("status for {id}: {other:?}"),
            }
        }
        assert!(known >= 1, "the whole workload vanished");
    }

    /// A crash between cone invalidation and the re-label (the
    /// `compact.incremental.relabel` failpoint inside the worker's edit
    /// session) must not poison the shared disk labeling cache: on
    /// restart the journal replays the patch cold from its materialized
    /// netlist, the base job's outcome survives verbatim, the patch
    /// still completes with the right answer, and no disk cache entry
    /// reads back corrupt.
    #[test]
    fn crash_during_edit_replay_keeps_disk_cache_consistent() {
        const BASE: &str = "\
.model patchbase
.inputs a b c
.outputs f g
.names a b f
11 1
.names b c g
1- 1
-1 1
.end
";
        let dir = scratch_dir("crash-recovery", "edit-replay");
        let journal = dir.join("journal");
        let jflag = journal.to_str().unwrap().to_string();
        let flags = ["--journal", jflag.as_str(), "--workers", "1"];
        let mut server = ServerProc::spawn(
            &flags,
            &[("FLOWC_FAILPOINTS", "compact.incremental.relabel=crash")],
        );
        let addr = server.addr;

        // The plain submit path never enters an edit session, so the
        // failpoint stays dormant while the base job completes (and its
        // staircase labeling writes through to the disk cache).
        let circuit = BASE.replace('\n', "\\n");
        let base_body = format!(
            r#"{{"circuit": "{circuit}", "format": "blif", "strategy": "staircase",
                "deadline_ms": 60000, "job_key": "er-base"}}"#
        );
        let (s, json) = submit(addr, &base_body);
        assert_eq!(s, 200, "{}", json.to_compact());
        let base_id = json.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(
            await_terminal(addr, base_id, Duration::from_secs(30)),
            "done"
        );
        let (rs, rjson) = call(addr, "GET", &format!("/result?id={base_id}"), "");
        assert_eq!(rs, 200);
        let base_outcome = rjson.get("outcome").unwrap().to_compact();

        // A live (cone-changing) edit: the worker's edit session
        // invalidates f's cone, hits the failpoint before the re-label,
        // and aborts the process. The HTTP response races the abort, so
        // tolerate a transport error — the admission record was synced
        // before the worker ever saw the job.
        let patch_body = r#"{"base_key": "er-base", "job_key": "er-1",
            "edits": ["rewire f 0 c"], "strategy": "staircase", "deadline_ms": 60000}"#;
        let _ = try_call(addr, "POST", "/patch", patch_body);
        assert!(
            server.wait_for_death(Duration::from_secs(30)),
            "edit-replay failpoint never fired"
        );
        drop(server);

        let server = ServerProc::spawn(&flags, &[]);
        let addr = server.addr;

        // The base job's terminal outcome is restored verbatim.
        assert_eq!(state_of(addr, base_id), "done");
        let (rs, rjson) = call(addr, "GET", &format!("/result?id={base_id}"), "");
        assert_eq!(rs, 200);
        assert_eq!(
            rjson.get("outcome").unwrap().to_compact(),
            base_outcome,
            "base outcome changed across the crash"
        );

        // The patch was journalled as a plain job over its materialized
        // netlist: recover its id through job-key dedupe and let the
        // replay drive it cold to completion.
        let dedupe = format!(
            r#"{{"circuit": "{circuit}", "format": "blif", "strategy": "staircase",
                "deadline_ms": 60000, "job_key": "er-1"}}"#
        );
        let (s, json) = submit(addr, &dedupe);
        assert_eq!(s, 200, "{}", json.to_compact());
        assert_eq!(
            json.get("duplicate").and_then(Json::as_bool),
            Some(true),
            "the interrupted patch was not replayed: {}",
            json.to_compact()
        );
        let patch_id = json.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(
            await_terminal(addr, patch_id, Duration::from_secs(60)),
            "done"
        );

        // The replayed patch lands on the same semiperimeter as a cold
        // synthesis of the edited circuit (`rewire f 0 c` repointed f's
        // buffer, so f is now just c).
        let reference = r#"{"circuit": ".model ref\n.inputs a b c\n.outputs f g\n.names c f\n1 1\n.names b c g\n1- 1\n-1 1\n.end\n",
            "format": "blif", "strategy": "staircase", "deadline_ms": 60000, "job_key": "er-ref"}"#;
        let (s, json) = submit(addr, reference);
        assert_eq!(s, 200, "{}", json.to_compact());
        let ref_id = json.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(
            await_terminal(addr, ref_id, Duration::from_secs(30)),
            "done"
        );
        let (_, pj) = call(addr, "GET", &format!("/result?id={patch_id}"), "");
        let (_, rj) = call(addr, "GET", &format!("/result?id={ref_id}"), "");
        let semi = |j: &Json| {
            j.get("outcome")
                .and_then(|o| o.get("semiperimeter"))
                .and_then(Json::as_u64)
        };
        assert_eq!(
            semi(&pj),
            semi(&rj),
            "replayed patch and cold reference disagree: {} vs {}",
            pj.to_compact(),
            rj.to_compact()
        );

        // The interrupted session left the disk labeling cache
        // consistent: entries exist (the check is not vacuous) and none
        // read back corrupt during the replay.
        let m = metrics(addr);
        let corrupt = m
            .get("cache")
            .and_then(|c| c.get("disk_corrupt"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(
            corrupt,
            0,
            "disk labeling cache corrupted: {}",
            m.to_compact()
        );
        let cached = std::fs::read_dir(journal.join("cache"))
            .map(|d| d.count())
            .unwrap_or(0);
        assert!(cached > 0, "no labelings persisted to the disk cache");
    }

    /// Crash between writing the compaction snapshot and deleting the
    /// sealed segments it covers: on restart the snapshot plus the stale
    /// segments replay idempotently — every job exactly once.
    #[test]
    fn crash_during_compaction_replays_idempotently() {
        let dir = scratch_dir("crash-recovery", "compact");
        let journal = dir.join("journal");
        let jflag = journal.to_str().unwrap().to_string();
        let flags = [
            "--journal",
            jflag.as_str(),
            "--workers",
            "2",
            "--queue-cap",
            "128",
            "--journal-segment",
            "8",
            "--journal-segments",
            "2",
        ];
        let mut server = ServerProc::spawn(
            &flags,
            &[("FLOWC_FAILPOINTS", "serve.journal.compact=crash")],
        );
        let addr = server.addr;

        let mut submitted = Vec::new();
        for i in 0..60 {
            match try_call(addr, "POST", "/submit", &fast_job(&format!("cp-{i}"), 0)) {
                Ok((200, json)) => {
                    submitted.push((
                        format!("cp-{i}"),
                        json.get("id").and_then(Json::as_u64).unwrap(),
                    ));
                }
                _ => break,
            }
        }
        assert!(
            server.wait_for_death(Duration::from_secs(30)),
            "compaction failpoint never fired"
        );
        drop(server);
        assert!(
            journal.join("snapshot.json").exists(),
            "the snapshot was written before the crash"
        );

        let server = ServerProc::spawn(&flags, &[]);
        let addr = server.addr;
        let mut sample_key = None;
        for (key, id) in &submitted {
            match try_call(addr, "GET", &format!("/status?id={id}"), "") {
                Ok((200, _)) => {
                    let state = await_terminal(addr, *id, Duration::from_secs(60));
                    assert!(
                        matches!(state.as_str(), "done" | "failed"),
                        "job {id}: unexpected terminal `{state}`"
                    );
                    sample_key.get_or_insert((key.clone(), *id));
                }
                Ok((404, _)) => {} // lost with the dying process's tail
                other => panic!("status for {id}: {other:?}"),
            }
        }

        // "Exactly once" across snapshot + stale segments: a recovered
        // key dedupes instead of spawning a second run.
        let (key, id) = sample_key.expect("at least one job survived");
        let (s, json) = submit(addr, &fast_job(&key, 0));
        assert_eq!(s, 200, "{}", json.to_compact());
        assert_eq!(json.get("duplicate").and_then(Json::as_bool), Some(true));
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(id));
    }
}

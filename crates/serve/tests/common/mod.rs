//! Shared helpers for the serve integration tests: a minimal HTTP client
//! matching the service's connection-per-request contract, and a harness
//! that runs the real `flowc-serve` binary with OS-assigned ports
//! (`--addr 127.0.0.1:0` + `--port-file`), so parallel tests and CI
//! runners never collide on a hardcoded port.

#![allow(dead_code)] // each test binary uses its own subset

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use flowc_report::Json;

/// One HTTP exchange against the server; transport errors come back as
/// `Err` so crash tests can race requests against a dying process.
pub fn try_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, Json)> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    s.write_all(req.as_bytes())?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no status line"))?;
    let body = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let json = if body.is_empty() {
        Json::Null
    } else {
        Json::parse(body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?
    };
    Ok((status, json))
}

/// One HTTP exchange against the server (connection-per-request, exactly
/// like the service's own `Connection: close` contract).
pub fn call(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    try_call(addr, method, path, body).expect("http exchange")
}

pub fn submit(addr: SocketAddr, body: &str) -> (u16, Json) {
    call(addr, "POST", "/submit", body)
}

/// Polls `/status` until the job reaches a terminal state; panics on
/// timeout. Returns the terminal state name.
pub fn await_terminal(addr: SocketAddr, id: u64, timeout: Duration) -> String {
    let deadline = Instant::now() + timeout;
    loop {
        let (status, json) = call(addr, "GET", &format!("/status?id={id}"), "");
        assert_eq!(status, 200, "status for {id}: {}", json.to_compact());
        let state = json
            .get("state")
            .and_then(Json::as_str)
            .unwrap()
            .to_string();
        if !matches!(state.as_str(), "queued" | "running") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} still `{state}` after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

pub fn metrics(addr: SocketAddr) -> Json {
    let (status, json) = call(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    json
}

pub fn counter(m: &Json, name: &str) -> u64 {
    m.get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing counter {name}: {}", m.to_compact()))
}

/// A scratch directory under the workspace `target/` tree (so CI can
/// upload it as a failure artifact), cleared on entry.
pub fn scratch_dir(group: &str, tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(group)
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

static PORT_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A real `flowc-serve` child process. Killing it (SIGKILL — no drain, no
/// destructors) is the crash under test; [`ServerProc::drop`] also kills,
/// so a panicking test never leaks a server.
pub struct ServerProc {
    child: Child,
    /// The discovered listen address.
    pub addr: SocketAddr,
}

impl ServerProc {
    /// Spawns the binary with `--addr 127.0.0.1:0 --port-file <tmp>` plus
    /// `extra` flags and `envs`, then blocks until the port file appears
    /// and `/healthz` answers.
    pub fn spawn(extra: &[&str], envs: &[(&str, &str)]) -> ServerProc {
        let port_file = std::env::temp_dir().join(format!(
            "flowc-serve-port-{}-{}",
            std::process::id(),
            PORT_FILE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&port_file);
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_flowc-serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--port-file")
            .arg(&port_file)
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn flowc-serve");

        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Some(status) = child.try_wait().expect("child wait") {
                panic!("flowc-serve exited during startup: {status}");
            }
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(port) = text.trim().parse::<u16>() {
                    if port != 0 {
                        break SocketAddr::from(([127, 0, 0, 1], port));
                    }
                }
            }
            assert!(Instant::now() < deadline, "server never wrote --port-file");
            std::thread::sleep(Duration::from_millis(10));
        };
        let _ = std::fs::remove_file(&port_file);

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok((200, _)) = try_call(addr, "GET", "/healthz", "") {
                break;
            }
            assert!(Instant::now() < deadline, "server never became healthy");
            std::thread::sleep(Duration::from_millis(10));
        }
        ServerProc { child, addr }
    }

    /// SIGKILL — the kernel-level crash the journal must survive — and
    /// reap the child.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Waits (up to `timeout`) for the child to die on its own — used
    /// when a failpoint inside the server is expected to abort it.
    pub fn wait_for_death(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            match self.child.try_wait().expect("child wait") {
                Some(_) => return true,
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        false
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        self.kill();
    }
}

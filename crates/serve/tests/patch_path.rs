//! End-to-end tests for the `POST /patch` incremental re-synthesis path:
//! a patch against a finished job's `job_key` re-labels only the affected
//! output cones through a worker-side edit session, chains lineage across
//! successive patches, reports its resolution ladder in the result body
//! and `/metrics`, and answers the failure modes (unknown lineage, refused
//! edit) with typed errors.

use std::time::Duration;

use flowc_report::Json;

mod common;
use common::{await_terminal, call, counter, metrics, submit, ServerProc};

/// A base circuit with stable net names the edit scripts can reference.
const BASE_BLIF: &str = "\
.model patchbase
.inputs a b c
.outputs f g
.names a b f
11 1
.names b c g
1- 1
-1 1
.end
";

fn base_job(key: &str) -> String {
    let circuit = BASE_BLIF.replace('\n', "\\n");
    format!(
        r#"{{"circuit": "{circuit}", "format": "blif", "strategy": "staircase",
            "deadline_ms": 60000, "job_key": "{key}"}}"#
    )
}

fn patch_job(base_key: &str, job_key: &str, edits: &[&str]) -> String {
    let edits: Vec<String> = edits.iter().map(|e| format!("\"{e}\"")).collect();
    format!(
        r#"{{"base_key": "{base_key}", "job_key": "{job_key}",
            "edits": [{}], "strategy": "staircase", "deadline_ms": 60000}}"#,
        edits.join(", ")
    )
}

fn outcome_of(addr: std::net::SocketAddr, id: u64) -> Json {
    let (status, json) = call(addr, "GET", &format!("/result?id={id}"), "");
    assert_eq!(status, 200, "result for {id}: {}", json.to_compact());
    json.get("outcome").cloned().unwrap_or(Json::Null)
}

#[test]
fn patches_resolve_incrementally_and_chain_lineage() {
    let server = ServerProc::spawn(&["--workers", "1"], &[]);
    let addr = server.addr;

    let (s, json) = submit(addr, &base_job("lin-0"));
    assert_eq!(s, 200, "{}", json.to_compact());
    let base_id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(
        await_terminal(addr, base_id, Duration::from_secs(30)),
        "done"
    );

    // Patch 1: a dead gate plus a live rewire — the worker builds the
    // lineage's edit session and reports its resolution ladder.
    let (s, json) = call(
        addr,
        "POST",
        "/patch",
        &patch_job("lin-0", "lin-1", &["add dead and a c", "rewire f 0 c"]),
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    assert_eq!(
        json.get("patched_from").and_then(Json::as_str),
        Some("lin-0")
    );
    let p1 = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, p1, Duration::from_secs(30)), "done");
    let outcome = outcome_of(addr, p1);
    let inc = outcome.get("incremental").unwrap_or_else(|| {
        panic!(
            "patch outcome lacks `incremental`: {}",
            outcome.to_compact()
        )
    });
    assert_eq!(inc.get("fallback").and_then(Json::as_bool), Some(false));
    assert_eq!(inc.get("lineage").and_then(Json::as_str), Some("lin-0"));
    assert_eq!(inc.get("edits").and_then(Json::as_u64), Some(2));
    // The dead gate never invalidates a cone: at least one hit.
    assert!(inc.get("hits").and_then(Json::as_u64).unwrap() >= 1);

    // Patch 2 chains from patch 1's key and must resume its session.
    let (s, json) = call(
        addr,
        "POST",
        "/patch",
        &patch_job("lin-1", "lin-2", &["remove dead"]),
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    let p2 = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, p2, Duration::from_secs(30)), "done");
    let inc = outcome_of(addr, p2).get("incremental").cloned().unwrap();
    assert_eq!(inc.get("resumed").and_then(Json::as_bool), Some(true));
    assert_eq!(inc.get("fallback").and_then(Json::as_bool), Some(false));

    // The patched netlist is authoritative: resubmitting it cold under a
    // fresh key must land on the same semiperimeter as the final patch.
    // (BLIF covers lower to an inner gate plus a buffer, so `rewire f 0 c`
    // repointed the buffer: f is now just c.)
    let reference = r#"{"circuit": ".model ref\n.inputs a b c\n.outputs f g\n.names c f\n1 1\n.names b c g\n1- 1\n-1 1\n.end\n",
        "format": "blif", "strategy": "staircase", "deadline_ms": 60000, "job_key": "ref-cold"}"#;
    let (s, json) = submit(addr, reference);
    assert_eq!(s, 200, "{}", json.to_compact());
    let r = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, r, Duration::from_secs(30)), "done");
    let cold = outcome_of(addr, r);
    let patched = outcome_of(addr, p2);
    assert_eq!(
        patched.get("semiperimeter").and_then(Json::as_u64),
        cold.get("semiperimeter").and_then(Json::as_u64),
        "incremental and cold disagree: {} vs {}",
        patched.to_compact(),
        cold.to_compact()
    );

    // `/metrics` exposes the patch counters.
    let m = metrics(addr);
    assert_eq!(counter(&m, "patches"), 2);
    assert!(counter(&m, "incremental_hits") >= 1);
    let resolved = counter(&m, "incremental_hits")
        + counter(&m, "incremental_repairs")
        + counter(&m, "incremental_warm_starts");
    assert!(
        resolved >= 1,
        "no edit resolved incrementally: {}",
        m.to_compact()
    );

    // Idempotent resubmission of a patch key dedupes like `/submit`.
    let (s, json) = call(
        addr,
        "POST",
        "/patch",
        &patch_job("lin-0", "lin-1", &["add dead and a c", "rewire f 0 c"]),
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    assert_eq!(json.get("duplicate").and_then(Json::as_bool), Some(true));
    assert_eq!(json.get("id").and_then(Json::as_u64), Some(p1));
}

#[test]
fn patch_failure_modes_answer_typed_errors() {
    let server = ServerProc::spawn(&["--workers", "1"], &[]);
    let addr = server.addr;

    // Unknown lineage: 404 before any work happens.
    let (s, json) = call(
        addr,
        "POST",
        "/patch",
        &patch_job("never-submitted", "p", &["remove g"]),
    );
    assert_eq!(s, 404, "{}", json.to_compact());
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("unknown_lineage")
    );

    let (s, json) = submit(addr, &base_job("err-base"));
    assert_eq!(s, 200, "{}", json.to_compact());
    let id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, id, Duration::from_secs(30)), "done");

    // A refused edit (removing a gate that feeds an output) is the
    // client's bug: 400 with the offending edit named.
    let (s, json) = call(
        addr,
        "POST",
        "/patch",
        &patch_job("err-base", "err-1", &["remove f"]),
    );
    assert_eq!(s, 400, "{}", json.to_compact());
    assert_eq!(json.get("error").and_then(Json::as_str), Some("bad_edit"));
    assert!(json
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("remove f"));

    // Malformed request bodies: 400 bad_request.
    let (s, json) = call(addr, "POST", "/patch", "{\"base_key\": \"err-base\"}");
    assert_eq!(s, 400, "{}", json.to_compact());
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("bad_request")
    );

    // Wrong method: the endpoint exists, but only as POST.
    let (s, _) = call(addr, "GET", "/patch", "");
    assert_eq!(s, 405);
}

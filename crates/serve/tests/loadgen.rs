//! Load-generation integration tests: drive a real server over TCP and
//! assert the overload contract — typed rejections and degradations,
//! never unbounded queueing; worker crashes contained and repaired;
//! cancellation honored mid-flight; `/metrics` reflecting all of it.

use std::time::{Duration, Instant};

use flowc_report::Json;
use flowc_serve::{BreakerConfig, ServeConfig, Server};

mod common;
use common::{await_terminal, call, counter, metrics, submit};

/// Overload: a stalled worker plus a tiny queue. Every submission gets a
/// typed answer (accept / queue_full / breaker_open) with retry hints,
/// depth never exceeds the bound, accepted jobs all finish, and the
/// breaker recovers through its half-open probe once the overload clears.
#[test]
fn overload_sheds_typed_and_recovers() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_capacity: 3,
        enable_chaos: true,
        breaker: BreakerConfig {
            base_cooldown: Duration::from_millis(200),
            ..BreakerConfig::default()
        },
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // Occupy the only worker deterministically.
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 30000, "chaos": "stall:1200"}"#,
    );
    assert_eq!(status, 200, "{}", json.to_compact());
    let stalled = json.get("id").and_then(Json::as_u64).unwrap();
    std::thread::sleep(Duration::from_millis(150)); // worker picked it up

    // Fill the queue to its bound.
    let mut accepted = vec![stalled];
    for _ in 0..3 {
        let (status, json) = submit(
            addr,
            r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
                "deadline_ms": 30000}"#,
        );
        assert_eq!(status, 200, "{}", json.to_compact());
        accepted.push(json.get("id").and_then(Json::as_u64).unwrap());
    }

    // The next submission is shed with a typed, retry-bearing error...
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 30000}"#,
    );
    assert_eq!(status, 429, "{}", json.to_compact());
    assert_eq!(json.get("error").and_then(Json::as_str), Some("queue_full"));
    assert!(json.get("retry_after_ms").and_then(Json::as_u64).is_some());

    // ...and the overload has tripped the breaker: reject-fast now.
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 30000}"#,
    );
    assert_eq!(status, 503, "{}", json.to_compact());
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("breaker_open")
    );
    assert!(json.get("retry_after_ms").and_then(Json::as_u64).is_some());

    let m = metrics(addr);
    assert!(counter(&m, "shed_queue_full") >= 1);
    assert!(counter(&m, "breaker_trips") >= 1);
    let depth = m.get("queue_depth").and_then(Json::as_u64).unwrap();
    assert!(depth <= 3, "queue depth {depth} exceeded its bound");

    // Every accepted job still completes — shedding protected them.
    for id in accepted {
        assert_eq!(await_terminal(addr, id, Duration::from_secs(20)), "done");
    }

    // Overload over, cooldown served: the half-open probe admits a job,
    // its success closes the breaker, and service resumes.
    let deadline = Instant::now() + Duration::from_secs(10);
    let recovered_id = loop {
        let (status, json) = submit(
            addr,
            r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
                "deadline_ms": 30000}"#,
        );
        if status == 200 {
            break json.get("id").and_then(Json::as_u64).unwrap();
        }
        assert!(Instant::now() < deadline, "breaker never recovered");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(
        await_terminal(addr, recovered_id, Duration::from_secs(20)),
        "done"
    );
    let m = metrics(addr);
    assert_eq!(
        m.get("breaker_state").and_then(Json::as_str),
        Some("closed")
    );

    server.shutdown();
}

/// Admission control: an impossible deadline is rejected with a typed
/// error up front; a tight-but-possible one is admitted at a cheaper
/// rung, and the result says so.
#[test]
fn deadlines_reject_or_degrade_at_admission() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // 1ms cannot fit even the staircase estimate (5ms prior × safety 2).
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "deadline_ms": 1}"#,
    );
    assert_eq!(status, 422, "{}", json.to_compact());
    assert_eq!(
        json.get("error").and_then(Json::as_str),
        Some("deadline_infeasible")
    );
    assert!(json.get("retry_after_ms").and_then(Json::as_u64).is_some());

    // 300ms cannot fit the exact-MIP prior (2s × 2) but fits the
    // heuristic: admitted, degraded, and honest about it end-to-end.
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "exact-mip",
            "deadline_ms": 300}"#,
    );
    assert_eq!(status, 200, "{}", json.to_compact());
    assert_eq!(json.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        json.get("rung").and_then(Json::as_str),
        Some("heuristic-oct")
    );
    let id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, id, Duration::from_secs(20)), "done");
    let (status, json) = call(addr, "GET", &format!("/result?id={id}"), "");
    assert_eq!(status, 200);
    let outcome = json.get("outcome").unwrap();
    assert_eq!(outcome.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        outcome.get("admission_rung").and_then(Json::as_str),
        Some("heuristic-oct")
    );

    let m = metrics(addr);
    assert!(counter(&m, "shed_deadline") >= 1);
    assert!(counter(&m, "degraded_admission") >= 1);

    server.shutdown();
}

/// Crash containment: a chaos job panics its worker; only that job fails
/// (typed `worker_crashed`), sibling jobs complete, the supervisor
/// restarts the worker, and the pool serves again afterwards.
#[test]
fn worker_panic_is_contained_and_repaired() {
    let server = Server::start(ServeConfig {
        workers: 2,
        queue_capacity: 16,
        enable_chaos: true,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 30000, "chaos": "panic-worker"}"#,
    );
    assert_eq!(status, 200, "{}", json.to_compact());
    let chaos_id = json.get("id").and_then(Json::as_u64).unwrap();

    let mut normal = Vec::new();
    for _ in 0..4 {
        let (status, json) = submit(
            addr,
            r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
                "deadline_ms": 30000}"#,
        );
        assert_eq!(status, 200, "{}", json.to_compact());
        normal.push(json.get("id").and_then(Json::as_u64).unwrap());
    }

    // The chaos job is failed by the supervisor with a typed error.
    assert_eq!(
        await_terminal(addr, chaos_id, Duration::from_secs(20)),
        "failed"
    );
    let (_, json) = call(addr, "GET", &format!("/result?id={chaos_id}"), "");
    assert_eq!(
        json.get("outcome")
            .and_then(|o| o.get("error"))
            .and_then(Json::as_str),
        Some("worker_crashed")
    );
    // Sibling jobs are untouched by the crash.
    for id in normal {
        assert_eq!(await_terminal(addr, id, Duration::from_secs(20)), "done");
    }
    let m = metrics(addr);
    assert!(counter(&m, "worker_restarts") >= 1);
    assert!(counter(&m, "failed") >= 1);

    // The restarted pool still serves.
    std::thread::sleep(Duration::from_millis(200));
    let (status, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "strategy": "staircase",
            "deadline_ms": 30000}"#,
    );
    assert_eq!(status, 200, "{}", json.to_compact());
    let id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, id, Duration::from_secs(20)), "done");

    server.shutdown();
}

/// End-to-end cancellation: a job whose BDD build runs for tens of
/// seconds uncancelled is cancelled mid-flight and aborts promptly with
/// the typed cancelled state.
#[test]
fn cancel_stops_a_running_solve() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // A 24-bit ripple adder in the natural (worst-case) variable order:
    // the shared-BDD build alone dwarfs the test timeout if not aborted.
    let mut n = flowc_logic::Network::new("wide-add");
    let a: Vec<_> = (0..24).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..24).map(|i| n.add_input(format!("b{i}"))).collect();
    let cin = n.add_input("cin");
    let (sum, cout) =
        flowc_logic::bench_suite::blocks::ripple_adder(&mut n, &a, &b, cin, "fa").unwrap();
    for s in sum {
        n.mark_output(s);
    }
    n.mark_output(cout);
    let blif = flowc_logic::blif::write(&n);
    let body = Json::Obj(vec![
        ("circuit".into(), Json::str(blif)),
        ("format".into(), Json::str("blif")),
        ("strategy".into(), Json::str("staircase")),
        ("deadline_ms".into(), Json::Num(120_000.0)),
    ])
    .to_compact();
    let (status, json) = submit(addr, &body);
    assert_eq!(status, 200, "{}", json.to_compact());
    let id = json.get("id").and_then(Json::as_u64).unwrap();

    // Wait until the worker is actually inside the solve.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (_, json) = call(addr, "GET", &format!("/status?id={id}"), "");
        if json.get("state").and_then(Json::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(50));

    let cancel_at = Instant::now();
    let (status, json) = call(addr, "POST", "/cancel", &format!("{{\"id\": {id}}}"));
    assert_eq!(status, 200, "{}", json.to_compact());

    let state = await_terminal(addr, id, Duration::from_secs(5));
    let latency = cancel_at.elapsed();
    assert_eq!(state, "cancelled");
    assert!(
        latency < Duration::from_secs(3),
        "cancel took {latency:?} to land"
    );
    let m = metrics(addr);
    assert!(counter(&m, "cancelled") >= 1);

    server.shutdown();
}

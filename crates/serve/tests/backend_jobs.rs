//! Backend-selection integration tests: jobs carrying a `backend` field
//! run through the unified `MappingBackend` dispatch and answer with
//! per-backend result shapes, and `/metrics` grows one `backend.*`
//! latency series per selection.

use std::net::SocketAddr;
use std::time::Duration;

use flowc_report::Json;
use flowc_serve::{ServeConfig, Server};

mod common;
use common::{await_terminal, call, metrics, submit};

fn outcome_of(addr: SocketAddr, id: u64) -> Json {
    let (status, json) = call(addr, "GET", &format!("/result?id={id}"), "");
    assert_eq!(status, 200, "{}", json.to_compact());
    json.get("outcome").cloned().unwrap_or(Json::Null)
}

/// Every non-COMPACT backend runs the same circuit to completion, each
/// result names its backend, tile accounting flows through, and the
/// metrics endpoint has a latency series per backend used.
#[test]
fn jobs_dispatch_through_selected_backends() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // The compact default first, for contrast (no `backend` field).
    let (s, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "deadline_ms": 60000}"#,
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    let compact_id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(
        await_terminal(addr, compact_id, Duration::from_secs(30)),
        "done"
    );

    for backend in ["staircase", "robdd-diagonal", "magic-nor"] {
        let body = format!(
            r#"{{"circuit": "dec", "format": "bench", "backend": "{backend}",
                "deadline_ms": 60000}}"#
        );
        let (s, json) = submit(addr, &body);
        assert_eq!(s, 200, "{backend}: {}", json.to_compact());
        let id = json.get("id").and_then(Json::as_u64).unwrap();
        assert_eq!(
            await_terminal(addr, id, Duration::from_secs(30)),
            "done",
            "{backend}"
        );
        let outcome = outcome_of(addr, id);
        assert_eq!(
            outcome.get("backend").and_then(Json::as_str),
            Some(backend),
            "{}",
            outcome.to_compact()
        );
        assert_eq!(outcome.get("tiles").and_then(Json::as_u64), Some(1));
    }

    // Partitioned with a tile the decoder cannot fit monolithically:
    // multiple tiles and transfer accounting in the result body.
    let (s, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "backend": "partitioned",
            "tile_rows": 6, "tile_cols": 6, "deadline_ms": 60000}"#,
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    let id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, id, Duration::from_secs(60)), "done");
    let outcome = outcome_of(addr, id);
    assert_eq!(
        outcome.get("backend").and_then(Json::as_str),
        Some("partitioned"),
        "{}",
        outcome.to_compact()
    );
    let tiles = outcome.get("tiles").and_then(Json::as_u64).unwrap();
    assert!(
        tiles > 1,
        "6x6 tile should split dec: {}",
        outcome.to_compact()
    );
    assert!(outcome.get("transfer_ops").and_then(Json::as_u64).is_some());
    assert!(outcome.get("rows").and_then(Json::as_u64).unwrap() <= 6);
    assert!(outcome.get("cols").and_then(Json::as_u64).unwrap() <= 6);

    // `/metrics` surfaces one latency series per backend selection.
    let m = metrics(addr);
    let latency = m.get("latency").expect("latency object");
    for series in [
        "backend.compact",
        "backend.staircase",
        "backend.robdd-diagonal",
        "backend.magic-nor",
        "backend.partitioned",
    ] {
        assert!(
            latency.get(series).is_some(),
            "missing {series}: {}",
            m.to_compact()
        );
    }
}

/// An impossible tile constraint answers a typed `infeasible` failure,
/// not a generic synthesis error and not a crash.
#[test]
fn impossible_tiles_fail_typed() {
    let server = Server::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    let (s, json) = submit(
        addr,
        r#"{"circuit": "dec", "format": "bench", "backend": "partitioned",
            "tile_rows": 1, "tile_cols": 1, "deadline_ms": 60000}"#,
    );
    assert_eq!(s, 200, "{}", json.to_compact());
    let id = json.get("id").and_then(Json::as_u64).unwrap();
    assert_eq!(await_terminal(addr, id, Duration::from_secs(30)), "failed");
    let outcome = outcome_of(addr, id);
    assert_eq!(
        outcome.get("error").and_then(Json::as_str),
        Some("infeasible"),
        "{}",
        outcome.to_compact()
    );
}
